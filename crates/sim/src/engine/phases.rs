//! The four per-cycle phases (arrivals → deliveries → CPU → arbitration)
//! and their helpers, expressed over one shard of the torus. Identical
//! code serves all three [`EngineMode`](crate::EngineMode)s — the full
//! scan and the active-set scan differ only in which nodes a phase
//! visits, and the event-driven mode steps the same phases at the cycles
//! it cannot prove frozen — and every shard count, threaded or not.
//!
//! ## Section layout
//!
//! A cycle is three sections per shard (see the module docs of
//! [`super`]): **A** = phases 1–3, **B** = packet-id fix-up + phase 4,
//! **C** = staged-arrival drain + deferred credit releases. Cross-shard
//! state is touched only through:
//!
//! - the shared **credit array** ([`Router::credit`]): during phase 4 a
//!   cell is read and spent exclusively by the unique upstream node of
//!   its FIFO; releases happen in phase 2 (section A) or at the cycle
//!   boundary (section C), never concurrently with the reads;
//! - the **staging mailboxes**: written at the end of section B, drained
//!   in section C in ascending source-shard order, which reproduces the
//!   global ascending-node win order of an unsharded engine exactly;
//! - event **freshness marks** (sequential execution only — the
//!   event-driven mode never runs threaded).
//!
//! Arbitration never reads another node's FIFOs directly; every
//! downstream-feasibility probe ([`Router::feasible_vc`] and friends) is
//! a credit-array load. That single indirection is what makes the phase
//! order within a cycle immaterial across shards.

use super::event::{EventState, NodeEvent, PollState};
use super::{Arrival, CycleStats, OutMsg, ShardData, Win, WinSource, RING};
use crate::config::{SimConfig, Vc, NUM_VCS};
use crate::flow::FlowSpec;
use crate::node::{vc_fifo_index, NodeState};
use crate::packet::{Packet, RoutingMode, DETOUR_BUDGET, NO_DETOUR};
use crate::perf::ShardPerf;
use crate::program::{NodeApi, NodeProgram, PollHint};
use bgl_torus::{Dim, Direction, HopPlan, Partition, TieBreak, MAX_DIMS, MAX_PORTS};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Below this pending-queue depth the engine keeps pulling the
/// program's own sends, so reactive sends waiting for FIFO space do not
/// starve a node's proactive schedule.
pub(super) const PULL_THRESHOLD: usize = 8;

/// How far into the pending queue the injector looks for a packet whose
/// class FIFO has room: without this, one full class FIFO would
/// head-of-line block packets of other classes (e.g. TPS phase-1
/// packets stuck behind a congested phase-2 forward).
const INJECT_SCAN: usize = 16;

/// Occupied-FIFO count above which the sendable-directions summary is
/// skipped. Building the summary costs one pass over every head; the
/// per-direction probes it can skip are passes that *stop at the
/// first winner*. With many heads queued, probes win almost
/// immediately and the full build costs more than it saves — the
/// summary pays off exactly in the sparse regime it exists for.
const SUMMARY_MAX_HEADS: u32 = 6;

/// The read-only routing-feasibility view: configuration, topology and
/// the shared downstream-credit array. Everything phase 4 needs to know
/// about *other* nodes flows through here, which is why it is equally
/// usable from a shard section and from the engine's own diagnostics
/// (HOL probes, stall breakdowns).
#[derive(Clone, Copy)]
pub(super) struct Router<'a> {
    pub(super) cfg: &'a SimConfig,
    pub(super) neighbors: &'a [[u32; MAX_PORTS]],
    pub(super) credits: &'a [AtomicU32],
    /// Per-directed-link liveness under an active fault plan; `None` on a
    /// healthy run, so every probe below stays one branch.
    pub(super) link_alive: Option<&'a [bool]>,
    /// Directed ports per node (`2 · ndims`): stride of the per-link
    /// arrays and bound of every direction scan.
    pub(super) ports: usize,
    /// Credit cells per node (`ports · NUM_VCS`).
    pub(super) vc_cells: usize,
    /// Partition dimensionality.
    pub(super) ndims: usize,
}

impl Router<'_> {
    /// Available space (counting in-flight reservations) of the transit
    /// VC FIFO at global node `n`, input port `port`, VC `vc`.
    #[inline]
    fn credit(&self, n: usize, port: usize, vc: usize) -> u32 {
        self.credits[n * self.vc_cells + vc_fifo_index(port, vc)].load(Relaxed)
    }

    /// Whether the directed link out of global node `n` along `d` is up.
    /// Arbitration refuses dead links outright; everything else (HOL
    /// probes, escape preconditions) treats them as permanently blocked.
    #[inline]
    pub(super) fn alive(&self, n: usize, d: Direction) -> bool {
        match self.link_alive {
            None => true,
            Some(a) => a[n * self.ports + d.index()],
        }
    }

    /// Whether this packet routes with the longest-first shaping (its own
    /// flag unless the router config overrides it).
    fn shaped(&self, pkt: &Packet) -> bool {
        self.cfg
            .router
            .longest_first_bias
            .unwrap_or(pkt.longest_first)
    }

    /// Longest-remaining-dimension preference: true when no other dimension
    /// has more hops left than `d.dim`. With the bias enabled, adaptive
    /// packets move only along their longest remaining dimension(s): on an
    /// asymmetric torus they spend bottleneck-dimension hops while
    /// bottleneck links are reachable instead of burning the short
    /// dimensions first and piling up behind the long one — the tree
    /// saturation Section 3.2 of the paper describes. On a symmetric torus
    /// hop counts stay balanced, so near-full adaptivity is retained.
    fn prefers(pkt: &Packet, d: Direction) -> bool {
        // Iterating every representable dimension is arity-correct: a
        // HopPlan carries zero hops in dimensions beyond its partition's
        // arity, and 0 <= here always holds.
        let here = pkt.plan.hops(d.dim);
        Dim::all(MAX_DIMS).all(|o| pkt.plan.hops(o) <= here)
    }

    /// True when every preferred direction of `pkt` at node `n` lacks
    /// dynamic-VC credit downstream — the precondition for taking the
    /// dimension-ordered escape from a non-preferred output.
    fn preferred_blocked(&self, n: usize, pkt: &Packet) -> bool {
        let chunks = pkt.chunks as u32;
        for dir in pkt.plan.minimal_directions() {
            if !Self::prefers(pkt, dir) {
                continue;
            }
            let nb = self.neighbors[n][dir.index()];
            if nb == u32::MAX {
                continue;
            }
            // A dead preferred link can never open: it counts as blocked,
            // so the dimension-ordered escape becomes reachable.
            if !self.alive(n, dir) {
                continue;
            }
            let nb_port = dir.opposite().index();
            for vc in 0..2 {
                if self.credit(nb as usize, nb_port, vc) >= chunks {
                    return false;
                }
            }
        }
        true
    }

    /// Does `pkt`'s routing allow it to take output `d`? Adaptive packets
    /// under the longest-first bias move only along preferred (longest
    /// remaining) dimensions, plus the dimension-ordered direction, which
    /// stays available as the deadlock-free bubble escape.
    pub(super) fn wants(&self, pkt: &Packet, d: Direction) -> bool {
        match pkt.routing {
            RoutingMode::Adaptive => {
                if pkt.plan.direction(d.dim) != Some(d) {
                    return false;
                }
                if !self.shaped(pkt) {
                    return true;
                }
                Self::prefers(pkt, d) || pkt.plan.dimension_order_next() == Some(d)
            }
            RoutingMode::Deterministic => pkt.plan.dimension_order_next() == Some(d),
        }
    }

    /// Choose the downstream VC for `pkt` over output `d`, or `None` if no
    /// VC has credit. `from_dim` is the dimension of the input port the
    /// packet currently occupies (`None` for injection); `n` and `nb` are
    /// global ranks.
    pub(super) fn feasible_vc(
        &self,
        pkt: &Packet,
        n: usize,
        from_dim: Option<usize>,
        d: Direction,
        nb: usize,
    ) -> Option<Vc> {
        let chunks = pkt.chunks as u32;
        let nb_port = d.opposite().index();
        match pkt.routing {
            RoutingMode::Adaptive => {
                // Under the bias, a non-preferred (dimension-order-only)
                // direction is an escape path: bubble VC only, and only
                // once every preferred direction is credit-blocked —
                // otherwise the escape becomes a side door that leaks
                // short-dimension hops and recreates the congestion it
                // exists to break.
                if self.shaped(pkt) && !Self::prefers(pkt, d) {
                    if self.cfg.router.adaptive_bubble_escape
                        && pkt.plan.dimension_order_next() == Some(d)
                        && self.preferred_blocked(n, pkt)
                    {
                        return self.bubble_feasible(pkt, from_dim, d, nb, nb_port);
                    }
                    return None;
                }
                let f0 = self.credit(nb, nb_port, 0);
                let f1 = self.credit(nb, nb_port, 1);
                let c0 = f0 >= chunks;
                let c1 = f1 >= chunks;
                match (c0, c1) {
                    // Join the shorter queue = the FIFO with more free space.
                    (true, true) => Some(match f0.cmp(&f1) {
                        std::cmp::Ordering::Greater => Vc::Dynamic0,
                        std::cmp::Ordering::Less => Vc::Dynamic1,
                        std::cmp::Ordering::Equal => {
                            if pkt.id & 1 == 0 {
                                Vc::Dynamic0
                            } else {
                                Vc::Dynamic1
                            }
                        }
                    }),
                    (true, false) => Some(Vc::Dynamic0),
                    (false, true) => Some(Vc::Dynamic1),
                    (false, false) => {
                        // Escape onto the bubble VC, dimension-ordered only.
                        if self.cfg.router.adaptive_bubble_escape
                            && pkt.plan.dimension_order_next() == Some(d)
                        {
                            self.bubble_feasible(pkt, from_dim, d, nb, nb_port)
                        } else {
                            None
                        }
                    }
                }
            }
            RoutingMode::Deterministic => self.bubble_feasible(pkt, from_dim, d, nb, nb_port),
        }
    }

    /// The bubble rule: a packet *continuing* along the same dimension on
    /// the bubble VC needs space for itself; a packet *entering* the bubble
    /// VC (from injection, from a dynamic VC, or turning a dimension) must
    /// additionally leave `bubble_slack_chunks` free.
    fn bubble_feasible(
        &self,
        pkt: &Packet,
        from_dim: Option<usize>,
        d: Direction,
        nb: usize,
        nb_port: usize,
    ) -> Option<Vc> {
        let chunks = pkt.chunks as u32;
        let continuing = pkt.vc == Vc::Bubble && from_dim == Some(d.dim.index());
        let required = chunks
            + if continuing {
                0
            } else {
                self.cfg.router.bubble_slack_chunks
            };
        if self.credit(nb, nb_port, Vc::Bubble.index()) >= required {
            Some(Vc::Bubble)
        } else {
            None
        }
    }

    /// Whether every minimal direction of `pkt` at node `n` is a dead
    /// link — the precondition for a non-minimal fault detour. `false` on
    /// a healthy run (no liveness map) or while any minimal link is up.
    fn minimal_dead(&self, n: usize, pkt: &Packet) -> bool {
        let Some(alive) = self.link_alive else {
            return false;
        };
        let mut any = false;
        for d in pkt.plan.minimal_directions() {
            if self.neighbors[n][d.index()] == u32::MAX {
                continue;
            }
            any = true;
            if alive[n * self.ports + d.index()] {
                return false;
            }
        }
        any
    }

    /// Fault-detour feasibility: may `pkt` take the *non-minimal* output
    /// `d` out of node `n`, and on which VC? Allowed only for adaptive
    /// packets whose entire minimal quadrant is dead, onto a live link
    /// that does not immediately undo the previous detour, with budget
    /// left ([`DETOUR_BUDGET`]) — and strictly on the dynamic VCs: the
    /// bubble VC stays dimension-ordered, so the escape network's
    /// deadlock freedom is untouched by rerouting. After a detour win the
    /// packet re-plans from the downstream node (see `apply_win`).
    pub(super) fn detour_vc(&self, pkt: &Packet, n: usize, d: Direction, nb: usize) -> Option<Vc> {
        self.link_alive?;
        if pkt.routing != RoutingMode::Adaptive
            || pkt.detour_count() >= DETOUR_BUDGET
            || pkt.detour_from() == Some(d.index())
            || !self.alive(n, d)
            || !self.minimal_dead(n, pkt)
        {
            return None;
        }
        let chunks = pkt.chunks as u32;
        let nb_port = d.opposite().index();
        let f0 = self.credit(nb, nb_port, 0);
        let f1 = self.credit(nb, nb_port, 1);
        match (f0 >= chunks, f1 >= chunks) {
            (true, true) => Some(match f0.cmp(&f1) {
                std::cmp::Ordering::Greater => Vc::Dynamic0,
                std::cmp::Ordering::Less => Vc::Dynamic1,
                std::cmp::Ordering::Equal => {
                    if pkt.id & 1 == 0 {
                        Vc::Dynamic0
                    } else {
                        Vc::Dynamic1
                    }
                }
            }),
            (true, false) => Some(Vc::Dynamic0),
            (false, true) => Some(Vc::Dynamic1),
            (false, false) => None,
        }
    }

    /// A freshly detoured head must not immediately bounce back through
    /// the link it arrived on while any *other* minimal direction is
    /// structurally alive at this node: waiting for credits on a live
    /// forward link always beats burning detour budget on a ping-pong
    /// (the systematic bounce would exhaust [`DETOUR_BUDGET`] against a
    /// single dead link). When the return is the only live minimal
    /// direction it stays allowed — it is a normal minimal move and
    /// clears the detour mark on a win.
    pub(super) fn suppress_return(&self, pkt: &Packet, n: usize, d: Direction) -> bool {
        if self.link_alive.is_none() || pkt.detour_from() != Some(d.index()) {
            return false;
        }
        pkt.plan
            .minimal_directions()
            .any(|o| o != d && self.neighbors[n][o.index()] != u32::MAX && self.alive(n, o))
    }
}

/// Bitmask of output directions `pkt` may take: a conservative
/// superset of the directions [`Router::wants`] approves. Every
/// direction `wants` can return true for — preferred, unshaped
/// minimal, dimension-ordered escape, deterministic next hop — lies
/// along the packet's remaining minimal quadrant, so the quadrant
/// bits suffice. Over-inclusion only costs a wasted probe (identical
/// to what the full scan does on every direction); under-inclusion
/// would change results, so this must stay a superset of `wants`.
fn wanted_dirs(pkt: &Packet) -> u16 {
    let mut dirs = 0u16;
    for d in pkt.plan.minimal_directions() {
        dirs |= 1 << d.index();
    }
    dirs
}

/// Union of [`wanted_dirs`] over every FIFO head of `node`: the only
/// output directions arbitration could possibly assign this cycle.
/// Stops as soon as all `ports` directions are covered — under
/// saturation a couple of heads suffice, so the build stays O(1) in the
/// dense regime where the summary cannot skip anything.
pub(super) fn sendable_dirs(node: &NodeState, ports: usize) -> u16 {
    let all: u16 = (1 << ports) - 1;
    let mut dirs = 0u16;
    let mut vcs = node.vc_mask;
    while vcs != 0 && dirs != all {
        let f = vcs.trailing_zeros() as usize;
        vcs &= vcs - 1;
        dirs |= wanted_dirs(node.vcs[f].head().expect("mask says non-empty"));
    }
    let mut inj = node.inj_mask;
    while inj != 0 && dirs != all {
        let f = inj.trailing_zeros() as usize;
        inj &= inj - 1;
        dirs |= wanted_dirs(node.inj[f].head().expect("mask says non-empty"));
    }
    dirs
}

/// One shard's view of the engine for the duration of a section: shared
/// read-only state (topology, credits, mailboxes), exclusive slices of
/// the per-node state for the shard's own rank range, and the shard's
/// private scratch. `nodes`/`programs`/`link_busy_until`/`link_stats`
/// are indexed *locally* (global rank − `base`); everything else uses
/// global ranks.
pub(super) struct Shard<'a> {
    pub(super) router: Router<'a>,
    pub(super) part: &'a Partition,
    pub(super) shard_of: &'a [u16],
    pub(super) counts: &'a [AtomicU64],
    pub(super) staging: &'a [Mutex<Vec<OutMsg>>],
    pub(super) nshards: usize,
    pub(super) si: usize,
    pub(super) base: usize,
    pub(super) next_id0: u64,
    pub(super) full_scan: bool,
    pub(super) nodes: &'a mut [NodeState],
    pub(super) programs: &'a mut [Box<dyn NodeProgram>],
    pub(super) link_busy_until: &'a mut [u64],
    /// Shard's slice of `NetStats::link_busy_per_link`; empty when
    /// detailed link stats are off.
    pub(super) link_stats: &'a mut [u64],
    pub(super) sd: &'a mut ShardData,
    pub(super) cs: &'a mut CycleStats,
    /// Event-driven bookkeeping (global node indices). `Some` only under
    /// sequential execution — the event mode never runs threaded.
    pub(super) events: Option<&'a mut EventState>,
    /// Invariant oracle. `Some` only under sequential execution.
    pub(super) oracle: Option<&'a mut crate::engine::oracle::Oracle>,
    /// This shard's slot of the host profiler (`SimConfig::perf`). The
    /// profiler only reads the host clock and writes its own accumulator,
    /// so enabling it can never perturb simulation results.
    pub(super) perf: Option<&'a mut ShardPerf>,
}

impl Shard<'_> {
    /// Start a lap clock — `Some` only when profiling is on, so the
    /// off-path cost of every lap call site is one predictable branch.
    #[inline]
    fn perf_clock(&self) -> Option<std::time::Instant> {
        self.perf.as_ref().map(|_| std::time::Instant::now())
    }

    /// Accumulate the time since the last lap into the phase slot chosen
    /// by `slot`, and restart the clock.
    #[inline]
    fn perf_lap(
        &mut self,
        clk: &mut Option<std::time::Instant>,
        slot: fn(&mut ShardPerf) -> &mut f64,
    ) {
        if let Some(t0) = clk {
            let p = self
                .perf
                .as_deref_mut()
                .expect("lap clock only runs with profiling on");
            let now = std::time::Instant::now();
            *slot(p) += now.duration_since(*t0).as_secs_f64();
            *t0 = now;
        }
    }

    /// Section A: phases 1–3 over this shard's nodes, then publish the
    /// cycle's injection count for the section-B id fix-up.
    pub(super) fn section_a(&mut self, t: u64) {
        let mut clk = self.perf_clock();
        self.phase_arrivals(t);
        self.perf_lap(&mut clk, |p| &mut p.phases.arrivals);
        self.phase_deliveries(t);
        self.perf_lap(&mut clk, |p| &mut p.phases.deliveries);
        self.phase_cpu(t);
        self.counts[self.si].store(self.sd.injected.len() as u64, Relaxed);
        self.perf_lap(&mut clk, |p| &mut p.phases.cpu);
    }

    /// Section B: rewrite this cycle's provisional packet ids to their
    /// final global values (prefix sum over the published per-shard
    /// counts), run phase 4, and hand the staged wins to the mailboxes.
    pub(super) fn section_b(&mut self, t: u64) {
        let mut clk = self.perf_clock();
        self.fixup_ids();
        self.perf_lap(&mut clk, |p| &mut p.phases.id_fixup);
        self.phase_arbitration(t);
        for dest in 0..self.nshards {
            let cell = &self.staging[self.si * self.nshards + dest];
            std::mem::swap(
                &mut *cell.lock().expect("staging poisoned"),
                &mut self.sd.outbox[dest],
            );
        }
        self.perf_lap(&mut clk, |p| &mut p.phases.arbitration);
    }

    /// Section C: move staged arrivals (ascending source shard — the
    /// global win order) into this shard's in-flight ring, and release
    /// the credits freed by this shard's phase-4 pops.
    pub(super) fn section_c(&mut self) {
        let mut clk = self.perf_clock();
        for src in 0..self.nshards {
            let cell = &self.staging[src * self.nshards + self.si];
            let mut inbox = cell.lock().expect("staging poisoned");
            for OutMsg { arrive, arr } in inbox.drain(..) {
                self.sd.ring[(arrive % RING as u64) as usize].push(arr);
            }
        }
        for (cell, chunks) in self.sd.deferred.drain(..) {
            self.router.credits[cell as usize].fetch_add(chunks, Relaxed);
        }
        self.perf_lap(&mut clk, |p| &mut p.phases.drain);
    }

    /// Assign final ids to this cycle's injections, in global injection
    /// order: ids are dense and ascend with (cycle, shard, node,
    /// injection order), exactly the sequence an unsharded phase 3
    /// produces. The oracle learns of injections here — the earliest
    /// point the final ids exist.
    fn fixup_ids(&mut self) {
        let mut b = self.next_id0;
        for k in 0..self.si {
            b += self.counts[k].load(Relaxed);
        }
        let mut injected = std::mem::take(&mut self.sd.injected);
        for (j, &(i, f, pos)) in injected.iter().enumerate() {
            let pkt = self.nodes[i as usize].inj[f as usize]
                .get_mut(pos as usize)
                .expect("injected this cycle, not yet arbitrated");
            pkt.id = b + j as u64;
            if let Some(o) = self.oracle.as_deref_mut() {
                o.on_inject(pkt);
            }
        }
        injected.clear();
        self.sd.injected = injected; // hand the allocation back
    }

    // ---- Phase 1: arrivals -------------------------------------------------

    fn phase_arrivals(&mut self, t: u64) {
        let slot = (t % RING as u64) as usize;
        let mut arrivals = std::mem::take(&mut self.sd.ring[slot]);
        for Arrival { node, port, pkt } in arrivals.drain(..) {
            let i = node as usize - self.base;
            let n = &mut self.nodes[i];
            let fi = vc_fifo_index(port as usize, pkt.vc.index());
            let was_empty = n.vcs[fi].is_empty();
            let done = pkt.plan.is_done();
            // Space was spent from the credit cell at the upstream win.
            n.vcs[fi].push(pkt);
            n.vc_mask |= 1 << fi;
            self.sd.arb_active.mark(i);
            if was_empty && done {
                self.sd.deliver_q.push((node, fi as u8));
            }
            self.cs.progress = true;
        }
        self.sd.ring[slot] = arrivals; // hand the allocation back
    }

    // ---- Phase 2: deliveries ----------------------------------------------

    fn phase_deliveries(&mut self, t: u64) {
        if self.sd.deliver_q.is_empty() {
            return;
        }
        let mut dq = std::mem::take(&mut self.sd.deliver_q);
        for (node, fi) in dq.drain(..) {
            self.try_deliver(node as usize - self.base, fi as usize, t);
        }
        // Hand the allocation back. `try_deliver` parks stalled FIFOs in
        // the node's `blocked_deliveries` (re-queued here only after the
        // CPU frees reception space), so nothing lands in `deliver_q`
        // during the loop above.
        debug_assert!(self.sd.deliver_q.is_empty());
        self.sd.deliver_q = dq;
    }

    /// Move deliverable head packets of `fifo` into the reception FIFO.
    /// `i` is shard-local.
    fn try_deliver(&mut self, i: usize, fifo: usize, t: u64) {
        let g = self.base + i;
        loop {
            let n = &mut self.nodes[i];
            let Some(head) = n.vcs[fifo].head() else {
                return;
            };
            if !head.plan.is_done() {
                return;
            }
            let chunks = head.chunks as u32;
            if n.reception.free_chunks() < chunks {
                self.cs.reception_stalls += 1;
                if !n.blocked_deliveries.contains(&(fifo as u8)) {
                    n.blocked_deliveries.push(fifo as u8);
                }
                return;
            }
            let pkt = n.vcs[fifo].pop().expect("head exists");
            if n.vcs[fifo].is_empty() {
                n.vc_mask &= !(1 << fifo);
            }
            assert!(n.reception.try_push(pkt).is_ok(), "space checked");
            // The pop freed downstream space: release the credit now —
            // the upstream reads it only in section B, barrier-ordered
            // after every shard's phase 2, matching the unsharded
            // same-cycle visibility of a phase-2 pop.
            self.router.credits[g * self.router.vc_cells + fifo].fetch_add(chunks, Relaxed);
            self.sd.cpu_active.mark(i);
            if self.events.is_some() {
                // The freed credit means the upstream neighbour may win
                // this link again.
                self.event_note_vc_pop(g, fifo);
            }
            self.cs.progress = true;
            let _ = t;
        }
    }

    // ---- Phase 3: CPU ------------------------------------------------------

    fn phase_cpu(&mut self, t: u64) {
        let programs = std::mem::take(&mut self.programs);
        if self.full_scan {
            for (i, prog) in programs.iter_mut().enumerate() {
                self.cpu_visit(i, prog, t, false);
            }
        } else {
            // A node acquires CPU work only through a reception-FIFO push
            // (which marks it) or through its own hooks (it is being
            // visited), so iterating a snapshot of each word misses
            // nothing. Idle marked nodes are cleared as they are visited.
            for w in 0..self.sd.cpu_active.words.len() {
                let mut bits = self.sd.cpu_active.words[w];
                while bits != 0 {
                    let i = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.cpu_visit(i, &mut programs[i], t, true);
                }
            }
        }
        self.programs = programs;
    }

    /// Run one node's CPU for cycle `t` if it has work; with `prune`,
    /// drop provably workless nodes from the active set. `i` is
    /// shard-local.
    fn cpu_visit(&mut self, i: usize, prog: &mut Box<dyn NodeProgram>, t: u64, prune: bool) {
        let horizon = (t + 1) as f64;
        {
            let n = &self.nodes[i];
            if n.cpu_free >= horizon {
                // Still booked into the future: keep it marked.
                return;
            }
            if n.reception.is_empty()
                && n.pending.is_empty()
                && n.pulled.is_empty()
                && n.program_done
            {
                if prune {
                    // Only a delivery can give this node CPU work again,
                    // and deliveries re-mark it.
                    self.sd.cpu_active.clear(i);
                }
                return;
            }
        }
        self.cpu_node(i, prog, t);
    }

    fn cpu_node(&mut self, i: usize, prog: &mut Box<dyn NodeProgram>, t: u64) {
        let g = self.base + i;
        let horizon = (t + 1) as f64;
        let mut declined = false;
        if let Some(ev) = self.events.as_deref_mut() {
            // Re-derive this node's sleep hints from scratch: the branches
            // below overwrite the defaults with whatever actually blocked.
            ev.nodes[g] = NodeEvent::default();
        }
        for _guard in 0..64 {
            if self.nodes[i].cpu_free >= horizon {
                break;
            }
            // Reception drain has priority: it keeps the network moving.
            if !self.nodes[i].reception.is_empty() {
                self.cpu_drain_one(i, prog, t);
                continue;
            }
            // Top up the pulled queue from the program's schedule.
            if self.nodes[i].pulled.len() < PULL_THRESHOLD
                && !self.nodes[i].program_done
                && !declined
            {
                if self.rate_blocked(i, t) {
                    // Engine-enforced rate window: the program is not
                    // polled for new sends until `next_allowed`. The
                    // completion check still runs, exactly as if the
                    // program had declined the pull itself.
                    declined = true;
                    self.cs.pacing += 1;
                    if let Some(ev) = self.events.as_deref_mut() {
                        ev.nodes[g].poll = PollState::Rate;
                    }
                    if prog.is_complete() && !self.nodes[i].program_done {
                        self.nodes[i].program_done = true;
                        self.cs.done += 1;
                    }
                } else {
                    let node = &mut self.nodes[i];
                    let before = node.pending.len();
                    let mut api =
                        NodeApi::new(g as u32, node.coord, t, self.part, &mut node.pending)
                            .with_flow(&mut node.flow);
                    let spec = prog.next_send(&mut api);
                    let extra = api.take_extra_cpu();
                    let denials = api.take_credit_blocked();
                    self.cs.credit_blocked += denials;
                    let after = node.pending.len();
                    if extra > 0.0 {
                        // Anchor at now: a node idle since an earlier cycle
                        // must not absorb the charge retroactively (its stale
                        // `cpu_free` may lie far in the past).
                        node.cpu_free = node.cpu_free.max(t as f64) + extra;
                        node.cpu_busy += extra;
                    }
                    self.cs.pending += (after - before) as i64;
                    match spec {
                        Some(s) => {
                            self.rate_charge(i, t, s.chunks);
                            self.nodes[i].pulled.push_back(s);
                            self.cs.pending += 1;
                        }
                        None => {
                            declined = true;
                            if let Some(ev) = self.events.as_deref_mut() {
                                if prog.poll_hint() == PollHint::SleepUntilDelivery {
                                    // The SleepUntilDelivery contract: a decline
                                    // is pure (frozen program state, repeatable
                                    // denial count) until a delivery.
                                    debug_assert!(
                                        extra == 0.0 && after == before,
                                        "SleepUntilDelivery program mutated state on decline"
                                    );
                                    ev.nodes[g].poll = PollState::Asleep { denials };
                                }
                            }
                            if prog.is_complete() && !self.nodes[i].program_done {
                                self.nodes[i].program_done = true;
                                self.cs.done += 1;
                            }
                        }
                    }
                }
            }
            if self.nodes[i].pending.is_empty() && self.nodes[i].pulled.is_empty() {
                break;
            }
            if !self.cpu_inject_one(i, t) {
                if let Some(ev) = self.events.as_deref_mut() {
                    // Every queued packet is stuck on injection-FIFO space;
                    // only an arbitration win here can free some.
                    ev.nodes[g].inject_blocked = true;
                }
                break; // no injection FIFO can take any queued packet now
            }
        }
    }

    /// Whether the engine-level rate window ([`FlowSpec::Rate`]) blocks
    /// pulling new sends from local node `i`'s program at cycle `t`.
    fn rate_blocked(&self, i: usize, t: u64) -> bool {
        matches!(self.router.cfg.flow, FlowSpec::Rate { .. })
            && (t as f64) < self.nodes[i].flow.next_allowed
    }

    /// Advance local node `i`'s rate window after pulling a `chunks`-chunk
    /// send at cycle `t`. No-op unless the flow spec is [`FlowSpec::Rate`].
    fn rate_charge(&mut self, i: usize, t: u64, chunks: u8) {
        if let FlowSpec::Rate { chunks_per_cycle } = self.router.cfg.flow {
            let ledger = &mut self.nodes[i].flow;
            ledger.next_allowed =
                ledger.next_allowed.max(t as f64) + chunks as f64 / chunks_per_cycle;
        }
    }

    /// Drain one packet from the reception FIFO and run `on_packet`.
    fn cpu_drain_one(&mut self, i: usize, prog: &mut Box<dyn NodeProgram>, t: u64) {
        let g = self.base + i;
        let cpu = &self.router.cfg.cpu;
        let node = &mut self.nodes[i];
        let pkt = node.reception.pop().expect("checked non-empty");
        let cost = cpu.per_packet_receive_cycles + pkt.chunks as f64 / cpu.chunks_per_cycle;
        node.cpu_free = node.cpu_free.max(t as f64) + cost;
        node.cpu_busy += cost;
        self.cs.delivered += 1;
        self.cs.payload += pkt.payload_bytes as u64;
        let latency = t - pkt.injected_at;
        self.cs.latency_sum += latency;
        self.cs.latency_max = self.cs.latency_max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1)
            .min(crate::stats::LATENCY_BUCKETS - 1);
        self.cs.hist[bucket] += 1;
        if let Some(o) = self.oracle.as_deref_mut() {
            o.on_deliver(&pkt, t);
        }
        let node = &mut self.nodes[i];
        let before = node.pending.len();
        let mut api = NodeApi::new(g as u32, node.coord, t, self.part, &mut node.pending)
            .with_flow(&mut node.flow);
        prog.on_packet(&mut api, &pkt);
        let extra = api.take_extra_cpu();
        self.cs.credit_blocked += api.take_credit_blocked();
        let after = node.pending.len();
        node.cpu_free += extra;
        node.cpu_busy += extra;
        self.cs.pending += (after - before) as i64;
        self.cs.live -= 1;
        if !node.program_done && prog.is_complete() {
            node.program_done = true;
            self.cs.done += 1;
        }
        // Freed reception space: retry stalled deliveries.
        let blocked = std::mem::take(&mut self.nodes[i].blocked_deliveries);
        self.sd
            .deliver_q
            .extend(blocked.into_iter().map(|f| (g as u32, f)));
        self.cs.progress = true;
    }

    /// Pay for and inject the first injectable pending send. Returns false
    /// if no injection FIFO currently accepts any of the first
    /// [`INJECT_SCAN`] pending packets. The packet id written here is
    /// *provisional* (this cycle's shard-local injection index); the
    /// section-B fix-up rewrites it before anything reads it.
    fn cpu_inject_one(&mut self, i: usize, t: u64) -> bool {
        let g = self.base + i;
        let nfifos = self.nodes[i].inj.len();
        let mut chosen = None;
        let reactive_len = self.nodes[i].pending.len().min(INJECT_SCAN);
        let pulled_len = self.nodes[i].pulled.len().min(INJECT_SCAN);
        'scan: for qi in 0..reactive_len + pulled_len {
            let spec = if qi < reactive_len {
                &self.nodes[i].pending[qi]
            } else {
                &self.nodes[i].pulled[qi - reactive_len]
            };
            let chunks = spec.chunks;
            let class = spec.class;
            debug_assert!((1..=8).contains(&chunks), "packet must be 1..=8 chunks");
            // Direction-affine placement: BG/L messaging software binds
            // injection FIFOs to link directions so one FIFO's blocked head
            // never starves an idle link of a different direction. Map the
            // packet's first route direction onto the FIFOs of its class,
            // falling back to any class FIFO with space.
            let dst = self.part.coord_of(spec.dst_rank);
            let plan = HopPlan::new(self.part, self.nodes[i].coord, dst, TieBreak::SrcParity);
            let primary = plan.dimension_order_next().map_or(0, |d| d.index());
            let mask = 1u8 << class;
            let node = &self.nodes[i];
            let eligible_count = (0..nfifos)
                .filter(|&f| node.inj_class[f] & mask != 0)
                .count();
            if eligible_count == 0 {
                continue;
            }
            let target = primary % eligible_count;
            let pref = (0..nfifos)
                .filter(|&f| node.inj_class[f] & mask != 0)
                .nth(target)
                .expect("target < eligible_count");
            if node.inj[pref].free_chunks() >= chunks as u32 {
                chosen = Some((qi, pref, plan));
                break 'scan;
            }
            for f in 0..nfifos {
                if node.inj_class[f] & mask != 0 && node.inj[f].free_chunks() >= chunks as u32 {
                    chosen = Some((qi, f, plan));
                    break 'scan;
                }
            }
        }
        let Some((qi, f, plan)) = chosen else {
            return false;
        };
        let node = &mut self.nodes[i];
        let spec = if qi < reactive_len {
            node.pending.remove(qi).expect("scanned index exists")
        } else {
            node.pulled
                .remove(qi - reactive_len)
                .expect("scanned index exists")
        };
        self.cs.pending -= 1;
        let cpu = &self.router.cfg.cpu;
        let cost = spec.cpu_cost_cycles
            + cpu.per_packet_inject_cycles
            + spec.chunks as f64 / cpu.chunks_per_cycle;
        node.cpu_free = node.cpu_free.max(t as f64) + cost;
        node.cpu_busy += cost;
        let dst = self.part.coord_of(spec.dst_rank);
        assert_ne!(dst, node.coord, "programs must not send to themselves");
        let pkt = Packet {
            // Provisional: shard-local injection index of this cycle,
            // rewritten to the dense global id by `fixup_ids` before
            // phase 4 (the first reader) runs.
            id: self.sd.injected.len() as u64,
            src_rank: g as u32,
            dst,
            chunks: spec.chunks,
            payload_bytes: spec.payload_bytes,
            // The plan computed for FIFO affinity during the scan, reused.
            plan,
            routing: spec.routing,
            vc: Vc::Dynamic0,
            class: spec.class,
            meta: spec.meta,
            longest_first: spec.longest_first,
            injected_at: t,
            detour: NO_DETOUR,
        };
        assert!(node.inj[f].try_push(pkt).is_ok(), "space checked");
        let pos = node.inj[f].len() - 1;
        self.sd.injected.push((i as u32, f as u8, pos as u16));
        node.inj_mask |= 1 << f;
        self.sd.arb_active.mark(i);
        self.cs.live += 1;
        self.cs.injected += 1;
        self.cs.progress = true;
        true
    }

    // ---- Phase 4: arbitration ----------------------------------------------

    fn phase_arbitration(&mut self, t: u64) {
        if self.full_scan {
            for i in 0..self.nodes.len() {
                // Quick skip: nothing to move out of this node.
                if self.nodes[i].vc_mask == 0 && self.nodes[i].inj_mask == 0 {
                    continue;
                }
                self.arbitrate_node(i, t, false);
            }
        } else {
            // A node acquires arbitration work only through an arrival
            // commit (which marks it) or its own injections (phase 3
            // marks it), never from another node's arbitration — wins
            // hand packets to the staged outboxes, not directly to the
            // neighbour's FIFOs — so a snapshot scan misses nothing.
            for w in 0..self.sd.arb_active.words.len() {
                let mut bits = self.sd.arb_active.words[w];
                while bits != 0 {
                    let i = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.nodes[i].vc_mask == 0 && self.nodes[i].inj_mask == 0 {
                        self.sd.arb_active.clear(i);
                        continue;
                    }
                    self.arbitrate_node(i, t, true);
                }
            }
        }
    }

    /// Arbitrate every output link of local node `i`. With `use_summary`,
    /// probe only the directions some queued head actually wants (a
    /// per-direction bit summary built from the FIFO heads, extended when
    /// a win exposes a new head) instead of scanning all FIFOs per link. The summary is
    /// built lazily, on the first *free* link: under saturation most
    /// links are mid-transmission and the busy check alone disposes of
    /// them, so an eager build would cost a head scan per node-cycle for
    /// nothing. Nodes with many occupied FIFOs skip it entirely (see
    /// [`SUMMARY_MAX_HEADS`]).
    fn arbitrate_node(&mut self, i: usize, t: u64, use_summary: bool) {
        let g = self.base + i;
        let use_summary = use_summary && {
            let node = &self.nodes[i];
            node.vc_mask.count_ones() + node.inj_mask.count_ones() <= SUMMARY_MAX_HEADS
        };
        // Under an active fault plan the summary is disabled: detours send
        // packets along directions outside their minimal quadrant, so
        // `wanted_dirs` is no longer a superset of what arbitration may
        // assign. Probing all 2n directions keeps refusal + detour exact.
        let ports = self.router.ports;
        let all_dirs: u16 = (1 << ports) - 1;
        let mut summary: Option<u16> = if use_summary && self.router.link_alive.is_none() {
            None
        } else {
            Some(all_dirs)
        };
        for d in Direction::all(self.router.ndims) {
            let link = i * ports + d.index();
            if self.link_busy_until[link] > t {
                continue;
            }
            let nb = self.router.neighbors[g][d.index()];
            if nb == u32::MAX {
                continue;
            }
            // A dead output link refuses arbitration outright.
            if !self.router.alive(g, d) {
                continue;
            }
            let s = match summary {
                Some(s) => s,
                None => {
                    let s = sendable_dirs(&self.nodes[i], ports);
                    summary = Some(s);
                    s
                }
            };
            if s & (1 << d.index()) == 0 {
                continue;
            }
            if let Some(win) = self.arbitrate_output(i, d, nb as usize, t) {
                self.apply_win(i, d, nb as usize, win, t);
                if use_summary && s != all_dirs {
                    // The pop exposed a new head whose wanted directions
                    // the start-of-visit summary may not cover.
                    let head = match win.source {
                        WinSource::Transit { fifo } => self.nodes[i].vcs[fifo as usize].head(),
                        WinSource::Inject { fifo } => self.nodes[i].inj[fifo as usize].head(),
                    };
                    if let Some(pkt) = head {
                        summary = Some(s | wanted_dirs(pkt));
                    }
                }
            }
        }
    }

    /// Pick a winner for output `d` of local node `i`, or `None`.
    fn arbitrate_output(&self, i: usize, d: Direction, nb: usize, t: u64) -> Option<Win> {
        let inject_first = !self.router.cfg.router.transit_priority && (t & 1) == 1;
        if inject_first {
            if let Some(w) = self.arbitrate_inject(i, d, nb) {
                return Some(w);
            }
        }
        if let Some(w) = self.arbitrate_transit(i, d, nb) {
            return Some(w);
        }
        if !inject_first {
            return self.arbitrate_inject(i, d, nb);
        }
        None
    }

    fn arbitrate_transit(&self, i: usize, d: Direction, nb: usize) -> Option<Win> {
        let node = &self.nodes[i];
        if node.vc_mask == 0 {
            return None;
        }
        let g = self.base + i;
        let total = self.router.vc_cells;
        let start = node.rr[d.index()] as usize % total;
        // Visit only the set bits, in round-robin order from `start`:
        // first the bits at indices >= start (ascending), then the wrap.
        let below_start = node.vc_mask & ((1u64 << start) - 1);
        for mut half in [node.vc_mask ^ below_start, below_start] {
            while half != 0 {
                let f = half.trailing_zeros() as usize;
                half &= half - 1;
                let pkt = node.vcs[f].head().expect("mask says non-empty");
                if self.router.wants(pkt, d) {
                    if self.router.suppress_return(pkt, g, d) {
                        continue;
                    }
                    let from_dim = Some(f / NUM_VCS / 2); // port index / 2 = dimension
                    if let Some(vc) = self.router.feasible_vc(pkt, g, from_dim, d, nb) {
                        return Some(Win {
                            source: WinSource::Transit { fifo: f as u8 },
                            vc,
                            detour: false,
                        });
                    }
                } else if let Some(vc) = self.router.detour_vc(pkt, g, d, nb) {
                    return Some(Win {
                        source: WinSource::Transit { fifo: f as u8 },
                        vc,
                        detour: true,
                    });
                }
            }
        }
        None
    }

    fn arbitrate_inject(&self, i: usize, d: Direction, nb: usize) -> Option<Win> {
        let node = &self.nodes[i];
        let g = self.base + i;
        let mut mask = node.inj_mask;
        while mask != 0 {
            let f = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let pkt = node.inj[f].head().expect("mask says non-empty");
            if self.router.wants(pkt, d) {
                if self.router.suppress_return(pkt, g, d) {
                    continue;
                }
                if let Some(vc) = self.router.feasible_vc(pkt, g, None, d, nb) {
                    return Some(Win {
                        source: WinSource::Inject { fifo: f as u8 },
                        vc,
                        detour: false,
                    });
                }
            } else if let Some(vc) = self.router.detour_vc(pkt, g, d, nb) {
                return Some(Win {
                    source: WinSource::Inject { fifo: f as u8 },
                    vc,
                    detour: true,
                });
            }
        }
        None
    }

    fn apply_win(&mut self, i: usize, d: Direction, nb: usize, win: Win, t: u64) {
        let g = self.base + i;
        // Pop the winner from its source FIFO.
        let mut pkt = match win.source {
            WinSource::Transit { fifo } => {
                let f = fifo as usize;
                let node = &mut self.nodes[i];
                node.rr[d.index()] = fifo.wrapping_add(1);
                let pkt = node.vcs[f].pop().expect("winner exists");
                if node.vcs[f].is_empty() {
                    node.vc_mask &= !(1 << f);
                } else if node.vcs[f].head().expect("non-empty").plan.is_done() {
                    self.sd.deliver_q.push((g as u32, fifo));
                }
                // The freed space becomes upstream credit only at the
                // cycle boundary: deferring the release gives arbitration
                // a credit snapshot independent of node visit order, the
                // invariant that makes sharded cycles byte-identical.
                self.sd
                    .deferred
                    .push(((g * self.router.vc_cells + f) as u32, pkt.chunks as u32));
                pkt
            }
            WinSource::Inject { fifo } => {
                let node = &mut self.nodes[i];
                let pkt = node.inj[fifo as usize].pop().expect("winner exists");
                if node.inj[fifo as usize].is_empty() {
                    node.inj_mask &= !(1 << fifo);
                }
                pkt
            }
        };
        // Spend downstream credit and launch.
        let nb_port = d.opposite().index();
        let chunks = pkt.chunks as u32;
        let cell = &self.router.credits
            [nb * self.router.vc_cells + vc_fifo_index(nb_port, win.vc.index())];
        debug_assert!(cell.load(Relaxed) >= chunks, "feasible_vc checked credit");
        cell.fetch_sub(chunks, Relaxed);
        pkt.vc = win.vc;
        if win.detour {
            // Non-minimal fault sidestep: re-plan the whole route from the
            // downstream node and remember not to bounce straight back
            // through the link just crossed (its reverse is `nb_port`).
            pkt.plan = HopPlan::new(
                self.part,
                self.part.coord_of(nb as u32),
                pkt.dst,
                TieBreak::SrcParity,
            );
            pkt.note_detour(nb_port);
        } else {
            pkt.plan.advance(d.dim);
            pkt.clear_detour_from();
        }
        if let Some(o) = self.oracle.as_deref_mut() {
            if win.detour {
                // Rebase the hop ledger before recording the hop: the
                // replanned route supersedes the old planned count.
                o.on_detour(pkt.id, pkt.plan.total_hops());
            }
            o.on_hop(pkt.id, t);
        }
        if self.events.is_some() {
            self.event_note_win(g, nb, win);
        }
        let arrive = t + chunks as u64 + self.router.cfg.router.hop_latency_cycles as u64;
        self.sd.outbox[self.shard_of[nb] as usize].push(OutMsg {
            arrive,
            arr: Arrival {
                node: nb as u32,
                port: nb_port as u8,
                pkt,
            },
        });
        let ports = self.router.ports;
        self.link_busy_until[i * ports + d.index()] = t + chunks as u64;
        let di = d.dim.index();
        self.cs.link_busy[di] += chunks as u64;
        if !self.link_stats.is_empty() {
            self.link_stats[i * ports + d.index()] += chunks as u64;
        }
        self.cs.hops[di] += 1;
        match win.vc {
            Vc::Bubble => self.cs.bubble += 1,
            _ => self.cs.dynamic += 1,
        }
        self.cs.progress = true;
    }

    // ---- Event-mode bookkeeping hooks -------------------------------------

    /// Note an arbitration win out of global node `g` toward `nb` (event
    /// mode): the pop changed `g`'s own head lineup mid-visit (directions
    /// the per-visit summary already passed must be retried next cycle), a
    /// transit pop freed upstream credit, an injection pop freed local
    /// injection space, and the reservation at `nb` may flip the
    /// bubble-escape eligibility (`preferred_blocked`) of any of `nb`'s
    /// neighbours.
    fn event_note_win(&mut self, g: usize, nb: usize, win: Win) {
        let neighbors = self.router.neighbors;
        let ev = self.events.as_deref_mut().expect("event mode");
        ev.mark_fresh(g);
        match win.source {
            WinSource::Transit { fifo } => {
                let up = neighbors[g][fifo as usize / NUM_VCS];
                if up != u32::MAX {
                    ev.mark_fresh(up as usize);
                }
            }
            WinSource::Inject { .. } => {
                ev.nodes[g].inject_blocked = false;
            }
        }
        for &m in &neighbors[nb] {
            if m != u32::MAX {
                ev.mark_fresh(m as usize);
            }
        }
    }

    /// Note a delivery pop out of transit FIFO `fifo` at global node `g`
    /// (event mode): the freed space is new credit for the upstream
    /// neighbour on that port.
    fn event_note_vc_pop(&mut self, g: usize, fifo: usize) {
        let up = self.router.neighbors[g][fifo / NUM_VCS];
        if up != u32::MAX {
            self.events
                .as_deref_mut()
                .expect("event mode")
                .mark_fresh(up as usize);
        }
    }
}
