//! The simulation engine.
//!
//! One cycle is the time a 32-byte chunk takes to cross a link. Each cycle
//! runs four phases (see [`phases`]), in an order fixed for determinism:
//!
//! 1. **Arrivals** — packets whose last chunk crossed a link this cycle are
//!    committed into the downstream VC FIFO (space was reserved at
//!    arbitration time, so credits are never oversubscribed).
//! 2. **Deliveries** — VC-FIFO heads that have reached their destination
//!    move into the reception FIFO (or stall, back-pressuring the network,
//!    when it is full).
//! 3. **CPU** — each node's simulated cores drain the reception FIFO
//!    (running the program's `on_packet` hook), pull new sends from the
//!    program and pay the injection costs to place packets into injection
//!    FIFOs. All costs are charged against a single per-node CPU timeline.
//! 4. **Arbitration** — every idle output link picks, round-robin, a
//!    feasible head among the 18 transit VC FIFOs and the injection FIFOs.
//!    Adaptive packets choose a dynamic VC by join-shortest-queue, with an
//!    optional dimension-ordered bubble-VC escape; deterministic packets
//!    use the bubble VC only, honouring the bubble deadlock-avoidance rule.
//!
//! How *time* advances between those phases is the
//! [`EngineMode`](crate::EngineMode): the full scan visits every node every
//! cycle, the active-set mode visits only marked nodes every cycle, and the
//! event-driven mode additionally skips from stepped cycle to stepped cycle
//! when it can prove the intervening cycles inert (see [`event`]). All
//! three produce byte-identical [`NetStats`] and traces.
//!
//! ## Sharding
//!
//! The torus is partitioned into `SimConfig::shards` contiguous rank
//! ranges (slabs along the outermost dimension, since ranks are
//! x-innermost). Each cycle runs as three *sections* per shard:
//!
//! - **A** (phases 1–3): touches only the shard's own nodes, plus
//!   commutative cross-shard effects (credit releases on this shard's own
//!   cells, event freshness marks);
//! - **B** (packet-id fix-up + phase 4): arbitration reads neighbour
//!   state *only* through the shared credit array, whose cells each have
//!   exactly one reading/spending shard (the unique upstream of the
//!   FIFO), and stages cross-shard arrivals into per-(src,dst) outboxes;
//! - **C**: drains staged arrivals in ascending source-shard order (which
//!   reproduces the global ascending-node win order exactly) and applies
//!   the cycle's deferred credit releases.
//!
//! With `shards > 1` (and neither the invariant oracle nor event-driven
//! time in play) the sections run on one thread per shard, separated by
//! barriers; otherwise they run on the caller's thread in ascending shard
//! order. Both drive the *same* section code over the same data layout,
//! so results are byte-identical for every shard count, threaded or not.
//!
//! Two accounting rules make the sections order-independent (and apply
//! identically at `shards = 1`): credit freed by a phase-4 pop is
//! released at the cycle boundary, not mid-phase, so arbitration sees a
//! fixed credit snapshot regardless of node visit order; and CPU-busy
//! time accumulates per node, folded into `NetStats::cpu_busy_cycles` in
//! ascending node order only at observation points, so the float sum
//! never depends on execution interleaving.
//!
//! The run ends when every program reports complete and no packet remains
//! anywhere; a watchdog aborts with diagnostics if traffic stops moving.
//!
//! With [`SimConfig::trace`] set, the engine additionally records a
//! [`TraceSample`](crate::trace::TraceSample) time series (see
//! [`crate::trace`]) at a fixed cycle interval — purely observational
//! sampling that never changes results.

mod event;
mod oracle;
mod parallel;
mod perf;
mod phases;
mod tracer;

use crate::config::{EngineMode, SimConfig, Vc};
use crate::node::{vc_fifo_index, NodeState};
use crate::packet::{Packet, RoutingMode, DETOUR_BUDGET};
use crate::program::{NodeApi, NodeProgram};
use crate::stats::{NetStats, LATENCY_BUCKETS};
use bgl_torus::{Coord, Dim, Direction, Partition, MAX_DIMS, MAX_PORTS};
use event::EventState;
use oracle::Oracle;
use perf::{PerfState, ProgressState};
use phases::{Router, Shard};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use tracer::Tracer;

/// In-flight ring size; must exceed max packet chunks + hop latency.
const RING: usize = 64;

/// Why frozen traffic is frozen, computed from the queue state at the
/// moment the watchdog fires so a stall is diagnosable without a trace
/// run. The three causes are not exclusive and do not partition the live
/// packets — each counts a distinct blocking condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Incomplete programs with at least one full credit window (their
    /// next sends are flow-control blocked, see [`crate::flow`]).
    pub credit_blocked_nodes: usize,
    /// Total full credit windows across those nodes.
    pub closed_credit_windows: u64,
    /// Transit-FIFO head packets with every allowed output direction
    /// busy or out of downstream VC credit (head-of-line blocking).
    pub hol_blocked_heads: u64,
    /// VC FIFOs whose deliverable head found the reception FIFO full.
    pub reception_stalled_fifos: u64,
    /// Transit- or injection-FIFO head packets parked purely behind
    /// faulted links (every direction their routing allows is dead and,
    /// for adaptive packets, no detour move remains). Counted separately
    /// from `hol_blocked_heads`: a fault park is a topology problem, not
    /// congestion.
    pub fault_blocked_heads: u64,
}

impl std::fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes credit-blocked ({} closed windows), {} HOL-blocked heads, \
             {} reception-stalled FIFOs, {} fault-blocked heads",
            self.credit_blocked_nodes,
            self.closed_credit_windows,
            self.hol_blocked_heads,
            self.reception_stalled_fifos,
            self.fault_blocked_heads
        )
    }
}

/// One dead directed link and how many queued packets it is blocking, in
/// the per-fault breakdown of [`SimError::Unreachable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBlock {
    /// Rank of the node the dead link leaves.
    pub node: u32,
    /// Output direction of the dead link.
    pub dir: Direction,
    /// FIFO-head packets parked behind it at the watchdog snapshot.
    pub blocked: u64,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No packet moved and no CPU work happened for `watchdog_cycles`
    /// while traffic remained (deadlock or stuck program).
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Packets still alive in FIFOs or flight.
        live_packets: u64,
        /// Programs not yet complete.
        incomplete_programs: usize,
        /// Why the frozen traffic is frozen (credit vs HOL vs reception),
        /// snapshotted at the watchdog.
        breakdown: StallBreakdown,
        /// With tracing enabled, compact summaries of the last few
        /// [`TraceSample`](crate::trace::TraceSample)s (the final one
        /// taken at the stall itself), so a deadlock is debuggable from
        /// the error text alone. Empty when tracing was off.
        trace_tail: Vec<String>,
    },
    /// `max_cycles` exceeded.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// Traffic froze behind permanently dead links with no recovery
    /// scheduled: deterministic routing cannot leave its dimension-ordered
    /// path, and adaptive packets exhausted their detour options. Reported
    /// instead of [`SimError::Stalled`] so a fault-induced park is never
    /// mistaken for congestion deadlock.
    Unreachable {
        /// Cycle at which the watchdog classified the park.
        cycle: u64,
        /// Packets that will never be delivered (queued plus pending).
        blocked_packets: u64,
        /// Per-dead-link breakdown of the parked FIFO heads, sorted by
        /// (node, direction).
        faults: Vec<FaultBlock>,
    },
    /// The requested component is not defined for the partition's
    /// dimensionality (e.g. the two-phase indirect schedules factor a
    /// 3-D torus and reject higher-arity shapes before simulating).
    /// Raised up front, never after cycles have run.
    UnsupportedDims {
        /// The rejecting component (a strategy's short name).
        what: &'static str,
        /// The partition's dimensionality.
        ndims: usize,
        /// Highest dimensionality the component supports.
        max_dims: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                cycle,
                live_packets,
                incomplete_programs,
                breakdown,
                trace_tail,
            } => {
                write!(
                    f,
                    "simulation stalled at cycle {cycle}: {live_packets} live packets, \
                     {incomplete_programs} incomplete programs; {breakdown}"
                )?;
                for line in trace_tail {
                    write!(f, "\n  trace {line}")?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::Unreachable {
                cycle,
                blocked_packets,
                faults,
            } => {
                write!(
                    f,
                    "destination unreachable at cycle {cycle}: {blocked_packets} packets \
                     blocked behind dead links with no recovery scheduled"
                )?;
                for fb in faults {
                    write!(
                        f,
                        "\n  dead link {}:{} blocking {} queued packets",
                        fb.node, fb.dir, fb.blocked
                    )?;
                }
                Ok(())
            }
            SimError::UnsupportedDims {
                what,
                ndims,
                max_dims,
            } => write!(
                f,
                "{what} supports partitions of at most {max_dims} dimensions, \
                 got a {ndims}-dimensional shape"
            ),
        }
    }
}

impl std::error::Error for SimError {}

struct Arrival {
    node: u32,
    port: u8,
    pkt: Packet,
}

/// A staged cross-shard (or same-shard) arrival: phase 4 appends these to
/// the winner shard's outbox; section C moves them into the destination
/// shard's in-flight ring.
struct OutMsg {
    arrive: u64,
    arr: Arrival,
}

#[derive(Clone, Copy)]
enum WinSource {
    Transit { fifo: u8 },
    Inject { fifo: u8 },
}

#[derive(Clone, Copy)]
struct Win {
    source: WinSource,
    vc: Vc,
    /// Non-minimal fault sidestep: the winner re-plans its route from the
    /// downstream node (see `apply_win`). Always false on a healthy run.
    detour: bool,
}

/// A lazily-cleared bitset over node indices, scanned in ascending index
/// order (never hash order) so the active-set engine visits nodes in
/// exactly the sequence the full scan would.
///
/// The engine maintains the invariant that every node with work is marked;
/// a marked node that turns out to be idle is cleared when visited. Bits
/// are only ever *set* for nodes of the same shard between phases
/// (arrivals mark arbitration work, deliveries mark CPU work), so a phase
/// can iterate a snapshot of each word without missing work.
struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// A set over `n` nodes with every node marked (the engine prunes
    /// lazily from the conservative side).
    fn all(n: usize) -> ActiveSet {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        ActiveSet { words }
    }

    #[inline]
    fn mark(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    /// Marked-node count. Conservative marks make this an upper bound on
    /// real work — exactly the right direction for the threading gate.
    fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Per-shard simulation state. Indices stored here (`deliver_q`, ring
/// arrivals) are *global* node ranks; the active sets use shard-local bit
/// positions (`global - base`).
struct ShardData {
    /// In-flight ring: slot `t % RING` holds the packets arriving at this
    /// shard's nodes at cycle `t`.
    ring: Vec<Vec<Arrival>>,
    deliver_q: Vec<(u32, u8)>,
    /// Nodes that may have CPU work (non-empty reception/pending/pulled
    /// queues, or a program that has not declared completion).
    cpu_active: ActiveSet,
    /// Nodes that may have a packet to arbitrate out (non-zero `vc_mask`
    /// or `inj_mask`).
    arb_active: ActiveSet,
    /// Per-destination-shard staged wins of the current cycle.
    outbox: Vec<Vec<OutMsg>>,
    /// Packets injected this cycle, in injection order: `(local node,
    /// fifo, queue position)` of each provisional-id packet, rewritten to
    /// its final global id at the section-B fix-up.
    injected: Vec<(u32, u8, u16)>,
    /// Credit releases from this cycle's phase-4 pops, applied at the
    /// cycle boundary (section C): `(credit cell, chunks)`.
    deferred: Vec<(u32, u32)>,
}

impl ShardData {
    fn new(len: usize, nshards: usize) -> ShardData {
        ShardData {
            ring: (0..RING).map(|_| Vec::new()).collect(),
            deliver_q: Vec::new(),
            cpu_active: ActiveSet::all(len),
            arb_active: ActiveSet::all(len),
            outbox: (0..nshards).map(|_| Vec::new()).collect(),
            injected: Vec::new(),
            deferred: Vec::new(),
        }
    }
}

/// Statistics a single shard accumulates over one cycle, merged into the
/// engine's `NetStats` (in ascending shard order, though every merge is
/// order-independent) at the cycle boundary.
#[derive(Default)]
struct CycleStats {
    progress: bool,
    live: i64,
    pending: i64,
    done: usize,
    injected: u64,
    delivered: u64,
    payload: u64,
    latency_sum: u64,
    latency_max: u64,
    hist: [u64; LATENCY_BUCKETS],
    reception_stalls: u64,
    pacing: u64,
    credit_blocked: u64,
    // Fixed-size per-dimension counters (only the first `ndims` entries are
    // used): this struct is reset and merged every cycle, so it must stay
    // allocation-free.
    link_busy: [u64; MAX_DIMS],
    hops: [u64; MAX_DIMS],
    bubble: u64,
    dynamic: u64,
}

/// One scheduled liveness flip of one directed link, expanded from the
/// [`FaultPlan`](crate::FaultPlan) at engine construction.
#[derive(Debug, Clone, Copy)]
struct FaultEvent {
    cycle: u64,
    link: u32,
    alive: bool,
}

/// The simulator.
pub struct Engine {
    cfg: SimConfig,
    part: Partition,
    now: u64,
    nodes: Vec<NodeState>,
    programs: Vec<Box<dyn NodeProgram>>,
    /// `neighbors[n][dir]`: node on the other end of the link, or
    /// `u32::MAX` at a mesh edge (and for directions beyond the
    /// partition's `2n` ports).
    neighbors: Vec<[u32; MAX_PORTS]>,
    /// Directed output ports per node (`2 · partition.ndims()`): the
    /// stride of every dense per-link array below.
    ports: usize,
    /// Credit cells per node (`ports · NUM_VCS`, one per transit VC FIFO).
    vc_cells: usize,
    /// `busy_until[n*ports+dir]`.
    link_busy_until: Vec<u64>,
    /// Available downstream space per transit VC FIFO, indexed
    /// `node * vc_cells + vc_fifo_index(port, vc)`, counting in-flight
    /// reservations (spent at the upstream win, released when the packet
    /// is popped). Atomic so threaded shards can share it, but every cell
    /// has a single accessor per section: the unique upstream node's
    /// shard spends during phase 4, the owning node's shard releases
    /// during phase 2 and at the boundary — so plain relaxed ordering is
    /// exact, not approximate.
    credits: Vec<AtomicU32>,
    /// Shard boundaries: shard `s` owns global ranks
    /// `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
    /// Owning shard of each global rank.
    shard_of: Vec<u16>,
    shards: Vec<ShardData>,
    /// Per-(src,dst)-shard mailboxes (`src * nshards + dst`), swapped
    /// against shard outboxes at the end of section B and drained by the
    /// destination in section C. Uncontended by construction; the mutex
    /// exists to let threaded shards exchange the vectors safely.
    staging: Vec<Mutex<Vec<OutMsg>>>,
    /// Per-shard injection counts of the current cycle, published at the
    /// end of section A and prefix-summed by every shard in section B to
    /// place its packet ids.
    counts: Vec<AtomicU64>,
    cycle_stats: Vec<CycleStats>,
    /// Run sections on one thread per shard. Requires > 1 shard and
    /// neither the oracle (whose ledgers are inherently global) nor
    /// event-driven time (whose skip decisions are global); both of those
    /// still run the sharded *structure* sequentially, byte-identically.
    parallel: bool,
    /// Reference mode: scan every node every cycle (see
    /// [`EngineMode::FullScan`]).
    full_scan: bool,
    /// Event-driven wake bookkeeping; `None` unless `cfg.engine` is
    /// [`EngineMode::EventDriven`].
    events: Option<Box<EventState>>,
    live_packets: u64,
    pending_total: u64,
    done_programs: usize,
    next_packet_id: u64,
    stats: NetStats,
    last_progress: u64,
    started: bool,
    /// Time-series sampler; `None` unless `SimConfig::trace` is set.
    tracer: Option<Box<Tracer>>,
    /// Conservation-law oracle; `None` unless
    /// `SimConfig::check_invariants` is set.
    oracle: Option<Box<Oracle>>,
    /// Host-side wall-clock profiler; `None` unless `SimConfig::perf` is
    /// set (see [`crate::perf`]).
    perf: Option<Box<PerfState>>,
    /// Stderr progress heartbeat; `None` unless `SimConfig::progress` is
    /// set.
    progress: Option<Box<ProgressState>>,
    /// Per-directed-link liveness (`node·ports + dir`), *empty* on a healthy
    /// run so the hot paths keep a `None` fast path instead of a bounds
    /// check per probe. Mutated only by `apply_fault_transitions`, at the
    /// top of a cycle, single-threaded.
    fault_alive: Vec<bool>,
    /// The fault plan expanded to per-link liveness flips, sorted by
    /// (cycle, link).
    fault_schedule: Vec<FaultEvent>,
    /// First unapplied entry of `fault_schedule`.
    fault_cursor: usize,
}

impl Engine {
    /// Build an engine over `cfg` with one program per node (rank order).
    ///
    /// # Panics
    /// Panics if `programs.len() != partition.num_nodes()` or the
    /// configuration is internally inconsistent.
    pub fn new(cfg: SimConfig, programs: Vec<Box<dyn NodeProgram>>) -> Engine {
        let part = cfg.partition;
        let p = part.num_nodes() as usize;
        assert_eq!(programs.len(), p, "need exactly one program per node");
        assert!(
            (8 + cfg.router.hop_latency_cycles as usize) < RING,
            "hop latency too large for the in-flight ring"
        );
        assert!(
            cfg.cpu.chunks_per_cycle > 0.0,
            "CPU bandwidth must be positive"
        );
        assert!(cfg.inj_fifo_count <= 32, "inj_mask is a u32 bitmask");
        cfg.flow.validate();
        if let Err(e) = cfg.fault.validate(&part) {
            panic!("invalid fault plan: {e}");
        }
        let ports = part.ports();
        let vc_cells = ports * crate::config::NUM_VCS;
        let nodes: Vec<NodeState> = (0..p as u32)
            .map(|r| NodeState::new(part.coord_of(r), &cfg, ports))
            .collect();
        let neighbors: Vec<[u32; MAX_PORTS]> = (0..p as u32)
            .map(|r| {
                let c = part.coord_of(r);
                let mut row = [u32::MAX; MAX_PORTS];
                for d in part.directions() {
                    if let Some(nc) = part.neighbor(c, d) {
                        row[d.index()] = part.rank_of(nc);
                    }
                }
                row
            })
            .collect();
        let stats = NetStats {
            link_busy_chunks: vec![0; part.ndims()],
            hops_taken: vec![0; part.ndims()],
            latency_histogram: vec![0; LATENCY_BUCKETS],
            link_busy_per_link: if cfg.detailed_link_stats {
                vec![0; p * ports]
            } else {
                Vec::new()
            },
            ..NetStats::default()
        };
        // Contiguous rank slabs; u16::MAX shards is plenty and keeps the
        // ownership map compact.
        let nshards = cfg.shards.get().min(p).min(u16::MAX as usize);
        let bounds: Vec<usize> = (0..=nshards).map(|s| s * p / nshards).collect();
        let mut shard_of = vec![0u16; p];
        for s in 0..nshards {
            shard_of[bounds[s]..bounds[s + 1]].fill(s as u16);
        }
        let shards = (0..nshards)
            .map(|s| ShardData::new(bounds[s + 1] - bounds[s], nshards))
            .collect();
        let credits = (0..p * vc_cells)
            .map(|_| AtomicU32::new(cfg.router.vc_fifo_chunks))
            .collect();
        let full_scan = cfg.engine == EngineMode::FullScan;
        let events = (cfg.engine == EngineMode::EventDriven).then(|| Box::new(EventState::new(p)));
        let tracer = cfg
            .trace
            .as_ref()
            .map(|tc| Box::new(Tracer::new(tc, part.ndims())));
        let oracle = cfg.check_invariants.then(|| Box::new(Oracle::new()));
        let perf = cfg
            .perf
            .is_some()
            .then(|| Box::new(PerfState::new(nshards, events.is_some())));
        let progress = cfg
            .progress
            .as_ref()
            .map(|pc| Box::new(ProgressState::new(pc)));
        let parallel = nshards > 1 && oracle.is_none() && events.is_none();
        let mut fault_alive = Vec::new();
        let mut fault_schedule = Vec::new();
        if !cfg.fault.is_empty() {
            fault_alive = vec![true; p * ports];
            for s in cfg.fault.link_schedules(&part) {
                fault_schedule.push(FaultEvent {
                    cycle: s.fail_at,
                    link: s.link as u32,
                    alive: false,
                });
                if let Some(r) = s.recover_at {
                    fault_schedule.push(FaultEvent {
                        cycle: r,
                        link: s.link as u32,
                        alive: true,
                    });
                }
            }
            fault_schedule.sort_by_key(|e| (e.cycle, e.link));
        }
        Engine {
            cfg,
            part,
            now: 0,
            nodes,
            programs,
            neighbors,
            ports,
            vc_cells,
            link_busy_until: vec![0; p * ports],
            credits,
            bounds,
            shard_of,
            shards,
            staging: (0..nshards * nshards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            counts: (0..nshards).map(|_| AtomicU64::new(0)).collect(),
            cycle_stats: (0..nshards).map(|_| CycleStats::default()).collect(),
            parallel,
            full_scan,
            events,
            live_packets: 0,
            pending_total: 0,
            done_programs: 0,
            next_packet_id: 0,
            stats,
            last_progress: 0,
            started: false,
            tracer,
            oracle,
            perf,
            progress,
            fault_alive,
            fault_schedule,
            fault_cursor: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far. `cpu_busy_cycles` is folded from the per-node
    /// accumulators only at observation points (trace samples, run end),
    /// so mid-run reads of that one field may lag.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of shards in use (after clamping to the node count).
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Run to completion. Returns the final statistics.
    pub fn run(&mut self) -> Result<NetStats, SimError> {
        // Time the whole call — every exit path included — when profiling
        // is on; off, this is one branch and no clock read.
        let t0 = self.perf.as_ref().map(|_| std::time::Instant::now());
        let result = self.run_inner();
        if let Some(t0) = t0 {
            if let Some(p) = self.perf.as_deref_mut() {
                p.profile.total_secs += t0.elapsed().as_secs_f64();
            }
        }
        result
    }

    fn run_inner(&mut self) -> Result<NetStats, SimError> {
        if !self.started {
            self.start_programs();
        }
        while !self.is_complete() {
            if self.progress_due() {
                self.progress_heartbeat();
            }
            if self.now >= self.cfg.max_cycles {
                self.sync_cpu_busy();
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }
            if self.now.saturating_sub(self.last_progress) > self.cfg.watchdog_cycles {
                // Capture the stalled queue state itself as a final
                // sample, then report the tail: the last windows before
                // the deadlock plus the frozen snapshot.
                if self.tracer.is_some() {
                    self.record_trace_sample(true);
                }
                self.sync_cpu_busy();
                let breakdown = self.stall_breakdown();
                // Heads parked purely behind dead links, with no recovery
                // left in the schedule, will never move: report the
                // topology problem (with its per-link breakdown) rather
                // than a generic stall.
                if breakdown.fault_blocked_heads > 0 && !self.fault_recovery_pending() {
                    return Err(SimError::Unreachable {
                        cycle: self.now,
                        blocked_packets: self.live_packets + self.pending_total,
                        faults: self.fault_block_report(),
                    });
                }
                let trace_tail = self
                    .tracer
                    .as_ref()
                    .map(|t| t.trace.summary_tail(4))
                    .unwrap_or_default();
                return Err(SimError::Stalled {
                    cycle: self.now,
                    live_packets: self.live_packets + self.pending_total,
                    incomplete_programs: self.programs.len() - self.done_programs,
                    breakdown,
                    trace_tail,
                });
            }
            self.step();
            // Event-driven mode: jump over cycles no component can act in.
            // Stepped cycles behave identically in every mode, so this is
            // the *only* place the modes differ.
            if self.events.is_some() && !self.is_complete() {
                self.fast_forward();
            }
        }
        self.sync_cpu_busy();
        if self.oracle.is_some() {
            self.oracle_quiesce_check();
        }
        Ok(self.stats.clone())
    }

    /// Whether the simulation has fully drained and every program reports
    /// complete.
    pub fn is_complete(&self) -> bool {
        self.started
            && self.live_packets == 0
            && self.pending_total == 0
            && self.done_programs == self.programs.len()
    }

    fn start_programs(&mut self) {
        self.started = true;
        let mut programs = std::mem::take(&mut self.programs);
        for (i, prog) in programs.iter_mut().enumerate() {
            let node = &mut self.nodes[i];
            let before = node.pending.len();
            let mut api = NodeApi::new(i as u32, node.coord, 0, &self.part, &mut node.pending)
                .with_flow(&mut node.flow);
            prog.start(&mut api);
            let extra = api.take_extra_cpu();
            self.stats.credit_blocked_events += api.take_credit_blocked();
            let after = node.pending.len();
            // Anchoring at `max(cpu_free, now)` is implicit here: `start`
            // runs at cycle 0 with every `cpu_free` still 0.0.
            node.cpu_free += extra;
            self.pending_total += (after - before) as u64;
            if prog.is_complete() {
                node.program_done = true;
                self.done_programs += 1;
            }
        }
        self.programs = programs;
    }

    /// Fold the per-node CPU-busy accumulators into
    /// `stats.cpu_busy_cycles`, in ascending node order — the one float
    /// reduction in the stats, pinned to a shard-independent order.
    fn sync_cpu_busy(&mut self) {
        self.stats.cpu_busy_cycles = self.nodes.iter().map(|n| n.cpu_busy).sum();
    }

    /// The shared link-liveness view, `None` on a healthy run so the hot
    /// paths keep a branch-free fast path.
    fn fault_link_alive(&self) -> Option<&[bool]> {
        (!self.fault_alive.is_empty()).then_some(&self.fault_alive[..])
    }

    /// Cycle of the next unapplied fault transition (`u64::MAX` once the
    /// schedule is exhausted) — the event-driven skip must never jump over
    /// it.
    fn next_fault_cycle(&self) -> u64 {
        self.fault_schedule
            .get(self.fault_cursor)
            .map_or(u64::MAX, |e| e.cycle)
    }

    /// Apply every fault transition scheduled at or before the current
    /// cycle: flip link liveness, drop packets in flight on dying links,
    /// and wake the affected endpoints. Runs at the top of `step()` —
    /// before any phase, on one thread — so every engine mode and shard
    /// count observes transitions at exactly the same point and results
    /// stay byte-identical.
    fn apply_fault_transitions(&mut self) {
        while let Some(&ev) = self.fault_schedule.get(self.fault_cursor) {
            if ev.cycle > self.now {
                break;
            }
            self.fault_cursor += 1;
            let link = ev.link as usize;
            self.fault_alive[link] = ev.alive;
            let u = link / self.ports;
            let d = Direction::from_index(link % self.ports);
            let v = self.neighbors[u][d.index()];
            debug_assert_ne!(v, u32::MAX, "validated plans never fault mesh edges");
            if !ev.alive {
                self.drop_in_flight(d, v as usize);
            }
            // A transition is progress: the topology changed, so the
            // watchdog clock restarts (a long wait for a scheduled
            // recovery must not fire it).
            self.last_progress = self.now;
            self.wake_for_fault(u, v as usize);
        }
    }

    /// Mark both endpoints of a flipped link active (and event-fresh):
    /// a recovery can unpark their heads, a failure changes what their
    /// arbitration may do.
    fn wake_for_fault(&mut self, u: usize, v: usize) {
        for g in [u, v] {
            if let Some(ev) = &mut self.events {
                ev.mark_fresh(g);
            }
            let s = self.shard_of[g] as usize;
            let local = g - self.bounds[s];
            self.shards[s].arb_active.mark(local);
            self.shards[s].cpu_active.mark(local);
        }
    }

    /// Remove every packet still crossing a link into `v` on port `dp`
    /// (the receive port of a link that just died). Dropped packets
    /// release their reserved downstream credit, count into
    /// `NetStats::dropped_by_fault`, and notify the destination program —
    /// exactly-once delivery becomes "delivered or dropped, exactly
    /// once", which the oracle checks at quiesce.
    fn drop_in_flight(&mut self, d: Direction, v: usize) {
        let dp = d.opposite().index();
        let sv = self.shard_of[v] as usize;
        let keep = (self.now % RING as u64) as usize;
        let mut dropped: Vec<Packet> = Vec::new();
        for (slot, ring) in self.shards[sv].ring.iter_mut().enumerate() {
            // Arrivals of the current cycle finished crossing before the
            // transition; they arrive normally. Every other slot holds
            // future arrivals: chunks still on the dying wire.
            if slot == keep {
                continue;
            }
            let mut i = 0;
            while i < ring.len() {
                if ring[i].node as usize == v && ring[i].port as usize == dp {
                    dropped.push(ring.remove(i).pkt);
                } else {
                    i += 1;
                }
            }
        }
        for pkt in dropped {
            let cell = v * self.vc_cells + vc_fifo_index(dp, pkt.vc.index());
            self.credits[cell].fetch_add(pkt.chunks as u32, Relaxed);
            self.live_packets -= 1;
            self.stats.dropped_by_fault += 1;
            if let Some(o) = self.oracle.as_deref_mut() {
                o.on_drop(&pkt);
            }
            let dst = self.part.rank_of(pkt.dst) as usize;
            let prog = &mut self.programs[dst];
            prog.on_packet_dropped(&pkt);
            if prog.is_complete() && !self.nodes[dst].program_done {
                self.nodes[dst].program_done = true;
                self.done_programs += 1;
            }
            if let Some(ev) = &mut self.events {
                ev.mark_fresh(dst);
            }
            let s = self.shard_of[dst] as usize;
            self.shards[s].cpu_active.mark(dst - self.bounds[s]);
        }
    }

    /// Borrow shard `s`'s slice of the engine as a section context.
    fn shard_ctx(&mut self, s: usize) -> Shard<'_> {
        let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
        let ports = self.ports;
        Shard {
            router: Router {
                cfg: &self.cfg,
                neighbors: &self.neighbors,
                credits: &self.credits,
                link_alive: (!self.fault_alive.is_empty()).then_some(&self.fault_alive[..]),
                ports,
                vc_cells: self.vc_cells,
                ndims: self.part.ndims(),
            },
            part: &self.part,
            shard_of: &self.shard_of,
            counts: &self.counts,
            staging: &self.staging,
            nshards: self.bounds.len() - 1,
            si: s,
            base: lo,
            next_id0: self.next_packet_id,
            full_scan: self.full_scan,
            nodes: &mut self.nodes[lo..hi],
            programs: &mut self.programs[lo..hi],
            link_busy_until: &mut self.link_busy_until[lo * ports..hi * ports],
            link_stats: if self.cfg.detailed_link_stats {
                &mut self.stats.link_busy_per_link[lo * ports..hi * ports]
            } else {
                &mut []
            },
            sd: &mut self.shards[s],
            cs: &mut self.cycle_stats[s],
            events: self.events.as_deref_mut(),
            oracle: self.oracle.as_deref_mut(),
            perf: self.perf.as_deref_mut().map(|p| &mut p.profile.shards[s]),
        }
    }

    /// Per-cycle gate for the threaded path: spawning the shard threads
    /// costs tens of microseconds, so thin cycles — sparse traffic,
    /// warm-up, drain tails — run the same three sections inline on this
    /// thread instead. Both paths execute identical section code in the
    /// same order, so the choice is invisible in every statistic; it only
    /// moves wall-clock. The estimate is the marked active-set population
    /// plus the pending delivery retries and this cycle's ring arrivals,
    /// an upper bound on nodes actually visited.
    fn cycle_is_wide(&self, t: u64) -> bool {
        /// Minimum estimated active nodes per shard before threads pay.
        const MIN_ACTIVE_PER_SHARD: usize = 128;
        let floor = (self.bounds.len() - 1) * MIN_ACTIVE_PER_SHARD;
        if self.full_scan {
            // The full scan visits every node every cycle by definition.
            return self.nodes.len() >= floor;
        }
        let mut active = 0usize;
        for sd in &self.shards {
            active += sd.cpu_active.popcount()
                + sd.arb_active.popcount()
                + sd.deliver_q.len()
                + sd.ring[(t % RING as u64) as usize].len();
            if active >= floor {
                return true;
            }
        }
        false
    }

    /// Advance one cycle (starting the programs first if needed).
    pub fn step(&mut self) {
        if !self.started {
            self.start_programs();
        }
        if let Some(ev) = &mut self.events {
            ev.clear_fresh();
        }
        if self.fault_cursor < self.fault_schedule.len() {
            self.apply_fault_transitions();
        }
        let t = self.now;
        for cs in &mut self.cycle_stats {
            *cs = CycleStats::default();
        }
        let nshards = self.bounds.len() - 1;
        let wide = self.parallel && self.cycle_is_wide(t);
        if self.perf.is_some() {
            self.perf_note_step(wide);
        }
        if wide {
            self.step_parallel(t);
        } else {
            for s in 0..nshards {
                self.shard_ctx(s).section_a(t);
            }
            for s in 0..nshards {
                self.shard_ctx(s).section_b(t);
            }
            for s in 0..nshards {
                self.shard_ctx(s).section_c();
            }
        }
        self.merge_cycle(t);
        self.now = t + 1;
        // Cycle-boundary oracle sweep: all four phases have run, so the
        // global counters must agree and no FIFO may be over its credit
        // budget. Disabled, this is one predictable branch per cycle.
        if self.oracle.is_some() {
            self.oracle_cycle_check(t);
        }
        // The only tracing cost in the disabled case: one predictable
        // branch per cycle (None → fall through).
        if let Some(tr) = &self.tracer {
            if self.now >= tr.next_at {
                self.record_trace_sample(false);
            }
        }
    }

    /// Fold the cycle's per-shard statistics into the run totals. Every
    /// merge is order-independent (sums, maxima), so the ascending shard
    /// order here is a convention, not a requirement.
    fn merge_cycle(&mut self, t: u64) {
        let mut id_total = 0;
        for (s, cs) in self.cycle_stats.iter().enumerate() {
            id_total += self.counts[s].load(Relaxed);
            if cs.progress {
                self.last_progress = t;
            }
            self.live_packets = (self.live_packets as i64 + cs.live) as u64;
            self.pending_total = (self.pending_total as i64 + cs.pending) as u64;
            self.done_programs += cs.done;
            let st = &mut self.stats;
            st.packets_injected += cs.injected;
            st.packets_delivered += cs.delivered;
            st.payload_bytes_delivered += cs.payload;
            st.total_latency_cycles += cs.latency_sum;
            st.max_latency_cycles = st.max_latency_cycles.max(cs.latency_max);
            if cs.delivered > 0 {
                st.completion_cycle = t;
            }
            for (h, d) in st.latency_histogram.iter_mut().zip(cs.hist) {
                *h += d;
            }
            st.reception_stall_events += cs.reception_stalls;
            st.pacing_blocked_cycles += cs.pacing;
            st.credit_blocked_events += cs.credit_blocked;
            for d in 0..st.link_busy_chunks.len() {
                st.link_busy_chunks[d] += cs.link_busy[d];
                st.hops_taken[d] += cs.hops[d];
            }
            st.bubble_hops += cs.bubble;
            st.dynamic_hops += cs.dynamic;
        }
        self.next_packet_id += id_total;
    }

    /// Diagnostic: dimension utilization snapshot helper.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Diagnostic: where packets currently are (for stall reports/tests).
    pub fn live_packet_count(&self) -> u64 {
        self.live_packets + self.pending_total
    }

    /// Diagnostic: coordinate of a rank.
    pub fn coord_of(&self, rank: u32) -> Coord {
        self.part.coord_of(rank)
    }

    /// Diagnostic: hops between two ranks under the engine's partition.
    pub fn hops_between(&self, a: u32, b: u32) -> u32 {
        self.part.hops(self.part.coord_of(a), self.part.coord_of(b))
    }

    /// Diagnostic: per-dimension utilization so far.
    pub fn dim_utilization(&self, dim: Dim) -> f64 {
        self.stats.dim_utilization(&self.part, dim)
    }

    /// The routing-feasibility view shared by phase 4 and the engine-side
    /// diagnostics (HOL probes read only the credit array, never another
    /// node's FIFO state).
    fn router(&self) -> Router<'_> {
        Router {
            cfg: &self.cfg,
            neighbors: &self.neighbors,
            credits: &self.credits,
            link_alive: self.fault_link_alive(),
            ports: self.ports,
            vc_cells: self.vc_cells,
            ndims: self.part.ndims(),
        }
    }

    /// Whether the head packet of transit FIFO `fifo` at node `n` cannot
    /// move right now: every output direction its routing mode allows
    /// (its minimal quadrant, shaped by the longest-first bias /
    /// dimension order) is either mid-transmission or out of downstream
    /// VC credit. This is the paper's head-of-line blocking signal —
    /// packets parked behind saturated long-dimension links.
    fn head_is_hol_blocked(&self, n: usize, fifo: usize, pkt: &Packet) -> bool {
        let router = self.router();
        let from_dim = Some(fifo / crate::config::NUM_VCS / 2); // port index / 2 = dimension
        let mut any_dir = false;
        for d in self.part.directions() {
            if !router.wants(pkt, d) {
                continue;
            }
            let nb = self.neighbors[n][d.index()];
            if nb == u32::MAX {
                continue;
            }
            // A dead link is not congestion: faulted directions neither
            // count as available nor as HOL evidence (the fault-blocked
            // classifier owns them).
            if !router.alive(n, d) {
                continue;
            }
            any_dir = true;
            if self.link_busy_until[n * self.ports + d.index()] <= self.now
                && router
                    .feasible_vc(pkt, n, from_dim, d, nb as usize)
                    .is_some()
            {
                return false;
            }
        }
        any_dir
    }

    /// Whether `pkt`, queued at node `n`, is parked purely behind dead
    /// links: every direction its routing allows is faulted and, for an
    /// adaptive packet with detour budget left, no live link is available
    /// to sidestep through either. Returns the first dead direction the
    /// packet wanted, attributing the park to that link.
    fn head_is_fault_blocked(&self, n: usize, pkt: &Packet) -> Option<Direction> {
        if self.fault_alive.is_empty() {
            return None;
        }
        let router = self.router();
        let mut first_dead = None;
        for d in self.part.directions() {
            if !router.wants(pkt, d) {
                continue;
            }
            if self.neighbors[n][d.index()] == u32::MAX {
                continue;
            }
            if router.alive(n, d) {
                // A live wanted direction exists: any park here is
                // congestion (HOL/credit), not the fault's fault.
                return None;
            }
            if first_dead.is_none() {
                first_dead = Some(d);
            }
        }
        let first_dead = first_dead?;
        if pkt.routing == RoutingMode::Adaptive && pkt.detour_count() < DETOUR_BUDGET {
            for d in self.part.directions() {
                if self.neighbors[n][d.index()] != u32::MAX
                    && router.alive(n, d)
                    && pkt.detour_from() != Some(d.index())
                {
                    // A detour move is still open; the packet is waiting
                    // on credit or a busy wire, not unroutable.
                    return None;
                }
            }
        }
        Some(first_dead)
    }

    /// Visit every fault-blocked transit- and injection-FIFO head with
    /// the dead link it is parked behind.
    fn scan_fault_blocked<F: FnMut(usize, Direction)>(&self, mut f: F) {
        if self.fault_alive.is_empty() {
            return;
        }
        for (ni, node) in self.nodes.iter().enumerate() {
            let mut mask = node.vc_mask;
            while mask != 0 {
                let fifo = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(head) = node.vcs[fifo].head() {
                    if !head.plan.is_done() {
                        if let Some(d) = self.head_is_fault_blocked(ni, head) {
                            f(ni, d);
                        }
                    }
                }
            }
            let mut imask = node.inj_mask;
            while imask != 0 {
                let fifo = imask.trailing_zeros() as usize;
                imask &= imask - 1;
                if let Some(head) = node.inj[fifo].head() {
                    if let Some(d) = self.head_is_fault_blocked(ni, head) {
                        f(ni, d);
                    }
                }
            }
        }
    }

    /// Whether any recovery remains in the unapplied tail of the fault
    /// schedule (if so, parked heads may yet move and the watchdog
    /// reports a stall, not unreachability).
    fn fault_recovery_pending(&self) -> bool {
        self.fault_schedule[self.fault_cursor..]
            .iter()
            .any(|e| e.alive)
    }

    /// Aggregate the fault-blocked heads per dead link, sorted by
    /// (node, direction) — the `faults` payload of
    /// [`SimError::Unreachable`].
    fn fault_block_report(&self) -> Vec<FaultBlock> {
        let mut counts: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
        let ports = self.ports;
        self.scan_fault_blocked(|n, d| {
            *counts.entry(n * ports + d.index()).or_insert(0) += 1;
        });
        counts
            .into_iter()
            .map(|(link, blocked)| FaultBlock {
                node: (link / ports) as u32,
                dir: Direction::from_index(link % ports),
                blocked,
            })
            .collect()
    }

    /// Diagnostic snapshot of why live traffic is blocked, taken when the
    /// watchdog fires (also usable from tests via [`Engine::run`]'s
    /// [`SimError::Stalled`] payload).
    fn stall_breakdown(&self) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for (ni, node) in self.nodes.iter().enumerate() {
            if !node.program_done {
                let closed = node.flow.closed_windows();
                if closed > 0 {
                    b.credit_blocked_nodes += 1;
                    b.closed_credit_windows += closed as u64;
                }
            }
            b.reception_stalled_fifos += node.blocked_deliveries.len() as u64;
            let mut mask = node.vc_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(head) = node.vcs[f].head() {
                    if !head.plan.is_done() {
                        // Fault parks are classified first so a head with
                        // only dead exits never inflates the HOL count.
                        if self.head_is_fault_blocked(ni, head).is_some() {
                            b.fault_blocked_heads += 1;
                        } else if self.head_is_hol_blocked(ni, f, head) {
                            b.hol_blocked_heads += 1;
                        }
                    }
                }
            }
            let mut imask = node.inj_mask;
            while imask != 0 {
                let f = imask.trailing_zeros() as usize;
                imask &= imask - 1;
                if let Some(head) = node.inj[f].head() {
                    if self.head_is_fault_blocked(ni, head).is_some() {
                        b.fault_blocked_heads += 1;
                    }
                }
            }
        }
        b
    }
}
