//! The simulation engine.
//!
//! One cycle is the time a 32-byte chunk takes to cross a link. Each cycle
//! runs four phases (see [`phases`]), in an order fixed for determinism:
//!
//! 1. **Arrivals** — packets whose last chunk crossed a link this cycle are
//!    committed into the downstream VC FIFO (space was reserved at
//!    arbitration time, so credits are never oversubscribed).
//! 2. **Deliveries** — VC-FIFO heads that have reached their destination
//!    move into the reception FIFO (or stall, back-pressuring the network,
//!    when it is full).
//! 3. **CPU** — each node's simulated cores drain the reception FIFO
//!    (running the program's `on_packet` hook), pull new sends from the
//!    program and pay the injection costs to place packets into injection
//!    FIFOs. All costs are charged against a single per-node CPU timeline.
//! 4. **Arbitration** — every idle output link picks, round-robin, a
//!    feasible head among the 18 transit VC FIFOs and the injection FIFOs.
//!    Adaptive packets choose a dynamic VC by join-shortest-queue, with an
//!    optional dimension-ordered bubble-VC escape; deterministic packets
//!    use the bubble VC only, honouring the bubble deadlock-avoidance rule.
//!
//! How *time* advances between those phases is the
//! [`EngineMode`](crate::EngineMode): the full scan visits every node every
//! cycle, the active-set mode visits only marked nodes every cycle, and the
//! event-driven mode additionally skips from stepped cycle to stepped cycle
//! when it can prove the intervening cycles inert (see [`event`]). All
//! three produce byte-identical [`NetStats`] and traces.
//!
//! The run ends when every program reports complete and no packet remains
//! anywhere; a watchdog aborts with diagnostics if traffic stops moving.
//!
//! With [`SimConfig::trace`] set, the engine additionally records a
//! [`TraceSample`](crate::trace::TraceSample) time series (see
//! [`crate::trace`]) at a fixed cycle interval — purely observational
//! sampling that never changes results.

mod event;
mod oracle;
mod phases;
mod tracer;

use crate::config::{EngineMode, SimConfig, Vc};
use crate::node::NodeState;
use crate::packet::Packet;
use crate::program::{NodeApi, NodeProgram};
use crate::stats::NetStats;
use bgl_torus::{Coord, Dim, Partition, ALL_DIRECTIONS};
use event::EventState;
use oracle::Oracle;
use tracer::Tracer;

/// In-flight ring size; must exceed max packet chunks + hop latency.
const RING: usize = 64;

/// Why frozen traffic is frozen, computed from the queue state at the
/// moment the watchdog fires so a stall is diagnosable without a trace
/// run. The three causes are not exclusive and do not partition the live
/// packets — each counts a distinct blocking condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Incomplete programs with at least one full credit window (their
    /// next sends are flow-control blocked, see [`crate::flow`]).
    pub credit_blocked_nodes: usize,
    /// Total full credit windows across those nodes.
    pub closed_credit_windows: u64,
    /// Transit-FIFO head packets with every allowed output direction
    /// busy or out of downstream VC credit (head-of-line blocking).
    pub hol_blocked_heads: u64,
    /// VC FIFOs whose deliverable head found the reception FIFO full.
    pub reception_stalled_fifos: u64,
}

impl std::fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes credit-blocked ({} closed windows), {} HOL-blocked heads, \
             {} reception-stalled FIFOs",
            self.credit_blocked_nodes,
            self.closed_credit_windows,
            self.hol_blocked_heads,
            self.reception_stalled_fifos
        )
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No packet moved and no CPU work happened for `watchdog_cycles`
    /// while traffic remained (deadlock or stuck program).
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Packets still alive in FIFOs or flight.
        live_packets: u64,
        /// Programs not yet complete.
        incomplete_programs: usize,
        /// Why the frozen traffic is frozen (credit vs HOL vs reception),
        /// snapshotted at the watchdog.
        breakdown: StallBreakdown,
        /// With tracing enabled, compact summaries of the last few
        /// [`TraceSample`](crate::trace::TraceSample)s (the final one
        /// taken at the stall itself), so a deadlock is debuggable from
        /// the error text alone. Empty when tracing was off.
        trace_tail: Vec<String>,
    },
    /// `max_cycles` exceeded.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                cycle,
                live_packets,
                incomplete_programs,
                breakdown,
                trace_tail,
            } => {
                write!(
                    f,
                    "simulation stalled at cycle {cycle}: {live_packets} live packets, \
                     {incomplete_programs} incomplete programs; {breakdown}"
                )?;
                for line in trace_tail {
                    write!(f, "\n  trace {line}")?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

struct Arrival {
    node: u32,
    port: u8,
    pkt: Packet,
}

#[derive(Clone, Copy)]
enum WinSource {
    Transit { fifo: u8 },
    Inject { fifo: u8 },
}

#[derive(Clone, Copy)]
struct Win {
    source: WinSource,
    vc: Vc,
}

/// A lazily-cleared bitset over node indices, scanned in ascending index
/// order (never hash order) so the active-set engine visits nodes in
/// exactly the sequence the full scan would.
///
/// The engine maintains the invariant that every node with work is marked;
/// a marked node that turns out to be idle is cleared when visited. Bits
/// are only ever *set* for other nodes between phases (arrivals mark
/// arbitration work, deliveries mark CPU work), so a phase can iterate a
/// snapshot of each word without missing work.
struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// A set over `n` nodes with every node marked (the engine prunes
    /// lazily from the conservative side).
    fn all(n: usize) -> ActiveSet {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        ActiveSet { words }
    }

    #[inline]
    fn mark(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }
}

/// The simulator.
pub struct Engine {
    cfg: SimConfig,
    part: Partition,
    now: u64,
    nodes: Vec<NodeState>,
    programs: Vec<Box<dyn NodeProgram>>,
    /// `neighbors[n][dir]`: node on the other end of the link, or
    /// `u32::MAX` at a mesh edge.
    neighbors: Vec<[u32; 6]>,
    /// `busy_until[n*6+dir]`.
    link_busy_until: Vec<u64>,
    ring: Vec<Vec<Arrival>>,
    deliver_q: Vec<(u32, u8)>,
    /// Nodes that may have CPU work (non-empty reception/pending/pulled
    /// queues, or a program that has not declared completion).
    cpu_active: ActiveSet,
    /// Nodes that may have a packet to arbitrate out (non-zero `vc_mask`
    /// or `inj_mask`).
    arb_active: ActiveSet,
    /// Reference mode: scan every node every cycle (see
    /// [`EngineMode::FullScan`]).
    full_scan: bool,
    /// Event-driven wake bookkeeping; `None` unless `cfg.engine` is
    /// [`EngineMode::EventDriven`].
    events: Option<Box<EventState>>,
    live_packets: u64,
    pending_total: u64,
    done_programs: usize,
    next_packet_id: u64,
    stats: NetStats,
    last_progress: u64,
    started: bool,
    /// Time-series sampler; `None` unless `SimConfig::trace` is set.
    tracer: Option<Box<Tracer>>,
    /// Conservation-law oracle; `None` unless
    /// `SimConfig::check_invariants` is set.
    oracle: Option<Box<Oracle>>,
}

impl Engine {
    /// Build an engine over `cfg` with one program per node (rank order).
    ///
    /// # Panics
    /// Panics if `programs.len() != partition.num_nodes()` or the
    /// configuration is internally inconsistent.
    pub fn new(cfg: SimConfig, programs: Vec<Box<dyn NodeProgram>>) -> Engine {
        let part = cfg.partition;
        let p = part.num_nodes() as usize;
        assert_eq!(programs.len(), p, "need exactly one program per node");
        assert!(
            (8 + cfg.router.hop_latency_cycles as usize) < RING,
            "hop latency too large for the in-flight ring"
        );
        assert!(
            cfg.cpu.chunks_per_cycle > 0.0,
            "CPU bandwidth must be positive"
        );
        assert!(cfg.inj_fifo_count <= 32, "inj_mask is a u32 bitmask");
        cfg.flow.validate();
        let nodes: Vec<NodeState> = (0..p as u32)
            .map(|r| NodeState::new(part.coord_of(r), &cfg))
            .collect();
        let neighbors: Vec<[u32; 6]> = (0..p as u32)
            .map(|r| {
                let c = part.coord_of(r);
                let mut row = [u32::MAX; 6];
                for d in ALL_DIRECTIONS {
                    if let Some(nc) = part.neighbor(c, d) {
                        row[d.index()] = part.rank_of(nc);
                    }
                }
                row
            })
            .collect();
        let stats = NetStats {
            latency_histogram: vec![0; crate::stats::LATENCY_BUCKETS],
            link_busy_per_link: if cfg.detailed_link_stats {
                vec![0; p * 6]
            } else {
                Vec::new()
            },
            ..NetStats::default()
        };
        let full_scan = cfg.engine == EngineMode::FullScan;
        let events = (cfg.engine == EngineMode::EventDriven).then(|| Box::new(EventState::new(p)));
        let tracer = cfg.trace.as_ref().map(|tc| Box::new(Tracer::new(tc)));
        let oracle = cfg.check_invariants.then(|| Box::new(Oracle::new()));
        Engine {
            cfg,
            part,
            now: 0,
            nodes,
            programs,
            neighbors,
            link_busy_until: vec![0; p * 6],
            ring: (0..RING).map(|_| Vec::new()).collect(),
            deliver_q: Vec::new(),
            cpu_active: ActiveSet::all(p),
            arb_active: ActiveSet::all(p),
            full_scan,
            events,
            live_packets: 0,
            pending_total: 0,
            done_programs: 0,
            next_packet_id: 0,
            stats,
            last_progress: 0,
            started: false,
            tracer,
            oracle,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Run to completion. Returns the final statistics.
    pub fn run(&mut self) -> Result<NetStats, SimError> {
        if !self.started {
            self.start_programs();
        }
        while !self.is_complete() {
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }
            if self.now.saturating_sub(self.last_progress) > self.cfg.watchdog_cycles {
                // Capture the stalled queue state itself as a final
                // sample, then report the tail: the last windows before
                // the deadlock plus the frozen snapshot.
                if self.tracer.is_some() {
                    self.record_trace_sample(true);
                }
                let trace_tail = self
                    .tracer
                    .as_ref()
                    .map(|t| t.trace.summary_tail(4))
                    .unwrap_or_default();
                return Err(SimError::Stalled {
                    cycle: self.now,
                    live_packets: self.live_packets + self.pending_total,
                    incomplete_programs: self.programs.len() - self.done_programs,
                    breakdown: self.stall_breakdown(),
                    trace_tail,
                });
            }
            self.step();
            // Event-driven mode: jump over cycles no component can act in.
            // Stepped cycles behave identically in every mode, so this is
            // the *only* place the modes differ.
            if self.events.is_some() && !self.is_complete() {
                self.fast_forward();
            }
        }
        if self.oracle.is_some() {
            self.oracle_quiesce_check();
        }
        Ok(self.stats.clone())
    }

    /// Whether the simulation has fully drained and every program reports
    /// complete.
    pub fn is_complete(&self) -> bool {
        self.started
            && self.live_packets == 0
            && self.pending_total == 0
            && self.done_programs == self.programs.len()
    }

    fn start_programs(&mut self) {
        self.started = true;
        let mut programs = std::mem::take(&mut self.programs);
        for (i, prog) in programs.iter_mut().enumerate() {
            let node = &mut self.nodes[i];
            let before = node.pending.len();
            let mut api = NodeApi::new(i as u32, node.coord, 0, &self.part, &mut node.pending)
                .with_flow(&mut node.flow);
            prog.start(&mut api);
            let extra = api.take_extra_cpu();
            self.stats.credit_blocked_events += api.take_credit_blocked();
            let after = node.pending.len();
            // Anchoring at `max(cpu_free, now)` is implicit here: `start`
            // runs at cycle 0 with every `cpu_free` still 0.0.
            node.cpu_free += extra;
            self.pending_total += (after - before) as u64;
            if prog.is_complete() {
                node.program_done = true;
                self.done_programs += 1;
            }
        }
        self.programs = programs;
    }

    /// Advance one cycle (starting the programs first if needed).
    pub fn step(&mut self) {
        if !self.started {
            self.start_programs();
        }
        if let Some(ev) = &mut self.events {
            ev.clear_fresh();
        }
        let t = self.now;
        self.phase_arrivals(t);
        self.phase_deliveries(t);
        self.phase_cpu(t);
        self.phase_arbitration(t);
        self.now = t + 1;
        // Cycle-boundary oracle sweep: all four phases have run, so the
        // global counters must agree and no FIFO may be over its credit
        // budget. Disabled, this is one predictable branch per cycle.
        if self.oracle.is_some() {
            self.oracle_cycle_check(t);
        }
        // The only tracing cost in the disabled case: one predictable
        // branch per cycle (None → fall through).
        if let Some(tr) = &self.tracer {
            if self.now >= tr.next_at {
                self.record_trace_sample(false);
            }
        }
    }

    /// Diagnostic: dimension utilization snapshot helper.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Diagnostic: where packets currently are (for stall reports/tests).
    pub fn live_packet_count(&self) -> u64 {
        self.live_packets + self.pending_total
    }

    /// Diagnostic: coordinate of a rank.
    pub fn coord_of(&self, rank: u32) -> Coord {
        self.part.coord_of(rank)
    }

    /// Diagnostic: hops between two ranks under the engine's partition.
    pub fn hops_between(&self, a: u32, b: u32) -> u32 {
        self.part.hops(self.part.coord_of(a), self.part.coord_of(b))
    }

    /// Diagnostic: per-dimension utilization so far.
    pub fn dim_utilization(&self, dim: Dim) -> f64 {
        self.stats.dim_utilization(&self.part, dim)
    }

    /// Diagnostic snapshot of why live traffic is blocked, taken when the
    /// watchdog fires (also usable from tests via [`Engine::run`]'s
    /// [`SimError::Stalled`] payload).
    fn stall_breakdown(&self) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for (ni, node) in self.nodes.iter().enumerate() {
            if !node.program_done {
                let closed = node.flow.closed_windows();
                if closed > 0 {
                    b.credit_blocked_nodes += 1;
                    b.closed_credit_windows += closed as u64;
                }
            }
            b.reception_stalled_fifos += node.blocked_deliveries.len() as u64;
            let mut mask = node.vc_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(head) = node.vcs[f].head() {
                    if !head.plan.is_done() && self.head_is_hol_blocked(ni, f, head) {
                        b.hol_blocked_heads += 1;
                    }
                }
            }
        }
        b
    }
}
