//! Event-driven time: skip from interesting cycle to interesting cycle.
//!
//! [`EngineMode::EventDriven`](crate::EngineMode) keeps the four
//! cycle-stepped phases untouched and adds a *skip-ahead* layer on top:
//! after each stepped cycle, [`Engine::fast_forward`] computes a
//! conservative earliest next-event cycle from per-component wake-ups —
//! in-flight arrivals (the rings), pending deliveries, CPU timelines,
//! program poll hints, rate windows, and link-busy horizons — and jumps
//! `now` straight there.
//!
//! Event mode always executes the shards *sequentially* (see the module
//! docs of [`super`]): freshness marks cross shard boundaries freely, so
//! the bookkeeping here stays plain single-threaded state.
//!
//! ## Why the skip is exact
//!
//! A cycle may be skipped only when the cycle-stepped engine, run over
//! that same cycle, would have mutated *nothing* except two closed-form
//! counters:
//!
//! - no arrivals (the in-flight rings are empty until the next wake-up),
//! - no deliveries (every shard's `deliver_q` empty, and stalled
//!   deliveries are only re-queued by a CPU drain, which is itself a
//!   stepped event),
//! - every CPU visit is a blocked poll — a rate-window check or a pure
//!   `next_send` decline ([`PollHint::SleepUntilDelivery`]) — whose only
//!   effect is incrementing `pacing_blocked_cycles` /
//!   `credit_blocked_events` by a per-cycle constant, replayed in closed
//!   form by [`Engine::replay_blocked_counters`],
//! - no arbitration win is possible: every candidate head lost its last
//!   stepped arbitration on *feasibility* (downstream credit), which only
//!   changes when a downstream FIFO pops or a win spends credit — both
//!   stepped events that mark the affected node *fresh* — or on a busy
//!   link, whose release cycle is known exactly (`link_busy_until`).
//!
//! The wake-up invariant (see DESIGN.md): **no component may be woken
//! later than its true next state change.** Waking too early merely steps
//! a provably-inert cycle (identical to what the cycle-stepped engines
//! do); waking too late would diverge. Every bound below is therefore
//! conservative — `u64::MAX` is only ever reported by a component that
//! provably cannot act until another component's stepped event re-marks
//! it.
//!
//! Trace samples land at exactly the cycles the stepped engines would
//! produce: a skip is segmented at every tracer `next_at` boundary and a
//! periodic sample (frozen deltas, live occupancy snapshot) is recorded
//! there, so traced runs are byte-identical too.

use super::phases::{sendable_dirs, PULL_THRESHOLD};
use super::{Engine, RING};

/// What the last completed CPU visit learned about a node's ability to
/// make progress on its own (without a delivery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(super) enum PollState {
    /// No standing decline: the node may accept a pull whenever its CPU is
    /// free (also the conservative state for programs that decline with
    /// [`PollHint::EveryCycle`](crate::PollHint) — they force a wake every
    /// cycle, trading skips for unconditional correctness).
    #[default]
    Open,
    /// The engine-level rate window was closed; re-poll no earlier than
    /// `next_allowed` (read live from the node's flow ledger at wake
    /// computation, since `rate_charge` may move it).
    Rate,
    /// The program declined with `SleepUntilDelivery`: no timed wake at
    /// all. `denials` credit acquisitions failed during the declining
    /// poll; the decline is pure, so the cycle-stepped engines would
    /// repeat exactly that count every idle cycle — replayed in closed
    /// form over skipped windows.
    Asleep { denials: u64 },
}

/// Per-node event-mode bookkeeping, rewritten at each CPU visit.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct NodeEvent {
    pub(super) poll: PollState,
    /// The last visit ended with queued sends that no injection FIFO
    /// could take: pulling more is pointless until an arbitration win
    /// drains an injection FIFO (which clears this).
    pub(super) inject_blocked: bool,
}

/// Engine-wide event-mode state: per-node wake hints plus a one-cycle
/// "freshness" bitset of nodes whose arbitration inputs changed during
/// the current stepped cycle (downstream pop or credit spend). A fresh
/// node must be re-arbitrated next cycle, so any freshness suppresses
/// skipping entirely. Indexed by *global* rank.
pub(super) struct EventState {
    pub(super) nodes: Vec<NodeEvent>,
    fresh: Vec<u64>,
    any_fresh: bool,
}

impl EventState {
    pub(super) fn new(n: usize) -> EventState {
        EventState {
            nodes: vec![NodeEvent::default(); n],
            fresh: vec![0; n.div_ceil(64)],
            any_fresh: false,
        }
    }

    #[inline]
    pub(super) fn mark_fresh(&mut self, i: usize) {
        self.fresh[i >> 6] |= 1 << (i & 63);
        self.any_fresh = true;
    }

    /// Forget last cycle's freshness marks (called at the start of each
    /// stepped cycle; the marks have served their purpose by suppressing
    /// the skip decision at the previous cycle boundary).
    pub(super) fn clear_fresh(&mut self) {
        if self.any_fresh {
            self.fresh.fill(0);
            self.any_fresh = false;
        }
    }
}

/// Which component's bound won the earliest-event minimum. Tracked for
/// the host profiler's wake-cause breakdown only — the skip logic itself
/// never consults it, so profiling cannot perturb skip decisions. Ties
/// keep the earlier-evaluated cause (strict-`<` updates below leave the
/// minimum value itself exactly as the plain `min` fold computed it).
#[derive(Clone, Copy)]
pub(super) enum WakeCause {
    /// Freshness marks forced an immediate re-step.
    Fresh,
    /// A pending delivery forced an immediate re-step.
    DeliverQ,
    /// The earliest in-flight ring arrival.
    Arrival,
    /// A CPU-phase wake of global node `g` (classified for the profile by
    /// the node's [`PollState`] at skip time).
    Cpu(usize),
    /// A busy output link's release cycle.
    LinkBusy,
    /// No component has any scheduled wake at all.
    Idle,
}

impl Engine {
    /// Earliest cycle at which any component can change state, evaluated
    /// at a cycle boundary (`self.now` is the next unstepped cycle).
    /// Returns `self.now` as soon as any immediate work is found, along
    /// with the component that set the bound.
    fn next_event_cycle(&self) -> (u64, WakeCause) {
        let now = self.now;
        let ev = self.events.as_ref().expect("event mode");
        if ev.any_fresh {
            return (now, WakeCause::Fresh);
        }
        if self.shards.iter().any(|sd| !sd.deliver_q.is_empty()) {
            return (now, WakeCause::DeliverQ);
        }
        // Earliest in-flight arrival. Every launched packet lands within
        // RING cycles (asserted at construction), so one lap suffices.
        let mut e = u64::MAX;
        let mut cause = WakeCause::Idle;
        'lap: for off in 0..RING as u64 {
            let slot = ((now + off) % RING as u64) as usize;
            if self.shards.iter().any(|sd| !sd.ring[slot].is_empty()) {
                e = now + off;
                cause = WakeCause::Arrival;
                break 'lap;
            }
        }
        if e == now {
            return (now, cause);
        }
        for (s, sd) in self.shards.iter().enumerate() {
            let base = self.bounds[s];
            for w in 0..sd.cpu_active.words.len() {
                let mut bits = sd.cpu_active.words[w];
                while bits != 0 {
                    let i = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let wake = self.cpu_wake(base + i);
                    if wake < e {
                        e = wake;
                        cause = WakeCause::Cpu(base + i);
                    }
                    if e <= now {
                        return (now, cause);
                    }
                }
            }
            for w in 0..sd.arb_active.words.len() {
                let mut bits = sd.arb_active.words[w];
                while bits != 0 {
                    let i = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let wake = self.arb_wake(base + i);
                    if wake < e {
                        e = wake;
                        cause = WakeCause::LinkBusy;
                    }
                    if e <= now {
                        return (now, cause);
                    }
                }
            }
        }
        (e, cause)
    }

    /// Next cycle global node `g`'s CPU phase could do anything but a
    /// replayable blocked poll. `cpu_visit` skips cycles with
    /// `cpu_free >= t + 1`, so the first visitable cycle is
    /// `floor(cpu_free)` — before that, even a pending drain cannot run.
    fn cpu_wake(&self, g: usize) -> u64 {
        let n = &self.nodes[g];
        let ev = self.events.as_ref().expect("event mode").nodes[g];
        let ready = (n.cpu_free as u64).max(self.now);
        if !n.reception.is_empty() {
            // A drain mutates real state: never skip past it.
            return ready;
        }
        let mut wake = u64::MAX;
        if (!n.pending.is_empty() || !n.pulled.is_empty()) && !ev.inject_blocked {
            // Queued sends with injection space available: injections
            // happen as soon as the CPU frees up.
            wake = ready;
        }
        if !n.program_done && n.pulled.len() < PULL_THRESHOLD {
            match ev.poll {
                PollState::Open => wake = wake.min(ready),
                PollState::Rate => {
                    // First cycle `t` with `t >= next_allowed`; every
                    // earlier visit is a pure `pacing_blocked_cycles`
                    // increment, replayed in closed form.
                    let open = n.flow.next_allowed.ceil() as u64;
                    wake = wake.min(ready.max(open));
                }
                PollState::Asleep { .. } => {}
            }
        }
        wake
    }

    /// Next cycle global node `g`'s arbitration could win an output.
    /// Heads on *free* links already lost their last stepped arbitration
    /// on downstream feasibility, which only a stepped event can change
    /// (fresh marks handle that); so the only timed wake is a busy link
    /// becoming usable. `busy_until == now` must wake now: the link was
    /// busy during the last stepped cycle but is usable this cycle.
    fn arb_wake(&self, g: usize) -> u64 {
        let node = &self.nodes[g];
        if node.vc_mask == 0 && node.inj_mask == 0 {
            return u64::MAX;
        }
        // Under an active fault plan, fault detours may route heads along
        // directions outside their minimal quadrant, so the sendable
        // summary is no longer a superset of what arbitration may try:
        // consider every direction (waking early is always safe). Fault
        // transitions themselves mark both endpoints fresh, so dead links
        // becoming live never rely on this bound.
        let ports = self.ports;
        let dirs = if self.fault_alive.is_empty() {
            sendable_dirs(node, ports)
        } else {
            (1u16 << ports) - 1
        };
        let mut wake = u64::MAX;
        for d in 0..ports {
            if dirs & (1 << d) == 0 || self.neighbors[g][d] == u32::MAX {
                continue;
            }
            let busy = self.link_busy_until[g * ports + d];
            if busy >= self.now {
                wake = wake.min(busy);
            }
        }
        wake
    }

    /// Apply the per-cycle blocked-poll counter increments the
    /// cycle-stepped engines would have made over the skipped window
    /// `[self.now, stop)`, in closed form. For each cpu-active node the
    /// eligible cycles are those from `max(now, floor(cpu_free))` on
    /// (earlier ones are CPU-booked no-ops); `stop` never exceeds the
    /// node's own wake, so a `Rate` window is closed and an `Asleep`
    /// decline repeats verbatim across the whole eligible span.
    fn replay_blocked_counters(&mut self, stop: u64) {
        for s in 0..self.shards.len() {
            let base = self.bounds[s];
            for w in 0..self.shards[s].cpu_active.words.len() {
                let mut bits = self.shards[s].cpu_active.words[w];
                while bits != 0 {
                    let i = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let g = base + i;
                    let n = &self.nodes[g];
                    if n.program_done || n.pulled.len() >= PULL_THRESHOLD || !n.reception.is_empty()
                    {
                        continue;
                    }
                    let from = (n.cpu_free as u64).max(self.now);
                    if stop <= from {
                        continue;
                    }
                    let cycles = stop - from;
                    match self.events.as_ref().expect("event mode").nodes[g].poll {
                        PollState::Rate => self.stats.pacing_blocked_cycles += cycles,
                        PollState::Asleep { denials } if denials > 0 => {
                            self.stats.credit_blocked_events += denials * cycles;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Jump `now` to the next event cycle, replaying blocked-poll
    /// counters over the skipped window and recording the periodic trace
    /// samples that fall inside it. Bounded so the `run` loop's watchdog
    /// and cycle-limit checks fire at exactly the cycle the cycle-stepped
    /// engines would report.
    pub(super) fn fast_forward(&mut self) {
        let (raw, cause) = self.next_event_cycle();
        if raw <= self.now {
            // Profiling only: count the skips suppressed purely by a
            // freshness mark (arbitration inputs changed last cycle).
            if matches!(cause, WakeCause::Fresh) && self.perf.is_some() {
                self.perf_note_fresh_suppression();
            }
            return;
        }
        let watchdog_fire = self
            .last_progress
            .saturating_add(self.cfg.watchdog_cycles)
            .saturating_add(1);
        // Never skip over a scheduled fault transition: the transition
        // cycle is stepped in every engine mode, keeping fault runs
        // byte-identical across modes.
        let e = raw
            .min(watchdog_fire)
            .min(self.cfg.max_cycles)
            .min(self.next_fault_cycle());
        if self.perf.is_some() {
            self.perf_note_skip(raw, e, watchdog_fire, cause);
        }
        while self.now < e {
            let stop = match &self.tracer {
                Some(tr) => e.min(tr.next_at),
                None => e,
            };
            // `next_at > now` is an invariant here: `step`/`fast_forward`
            // record any due sample immediately, and recording advances
            // `next_at` past the sample cycle.
            debug_assert!(stop > self.now, "tracer boundary must advance");
            self.replay_blocked_counters(stop);
            self.now = stop;
            if let Some(tr) = &self.tracer {
                if self.now >= tr.next_at {
                    self.record_trace_sample(false);
                }
            }
        }
    }
}
