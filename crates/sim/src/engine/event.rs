//! Event-driven time: skip from interesting cycle to interesting cycle.
//!
//! [`EngineMode::EventDriven`](crate::EngineMode) keeps the four
//! cycle-stepped phases untouched and adds a *skip-ahead* layer on top:
//! after each stepped cycle, [`Engine::fast_forward`] computes a
//! conservative earliest next-event cycle from per-component wake-ups —
//! in-flight arrivals (the ring), pending deliveries, CPU timelines,
//! program poll hints, rate windows, and link-busy horizons — and jumps
//! `now` straight there.
//!
//! ## Why the skip is exact
//!
//! A cycle may be skipped only when the cycle-stepped engine, run over
//! that same cycle, would have mutated *nothing* except two closed-form
//! counters:
//!
//! - no arrivals (the in-flight ring is empty until the next wake-up),
//! - no deliveries (`deliver_q` empty, and stalled deliveries are only
//!   re-queued by a CPU drain, which is itself a stepped event),
//! - every CPU visit is a blocked poll — a rate-window check or a pure
//!   `next_send` decline ([`PollHint::SleepUntilDelivery`]) — whose only
//!   effect is incrementing `pacing_blocked_cycles` /
//!   `credit_blocked_events` by a per-cycle constant, replayed in closed
//!   form by [`Engine::replay_blocked_counters`],
//! - no arbitration win is possible: every candidate head lost its last
//!   stepped arbitration on *feasibility* (downstream credit), which only
//!   changes when a downstream FIFO pops or reserves — both stepped
//!   events that mark the affected node *fresh* — or on a busy link,
//!   whose release cycle is known exactly (`link_busy_until`).
//!
//! The wake-up invariant (see DESIGN.md): **no component may be woken
//! later than its true next state change.** Waking too early merely steps
//! a provably-inert cycle (identical to what the cycle-stepped engines
//! do); waking too late would diverge. Every bound below is therefore
//! conservative — `u64::MAX` is only ever reported by a component that
//! provably cannot act until another component's stepped event re-marks
//! it.
//!
//! Trace samples land at exactly the cycles the stepped engines would
//! produce: a skip is segmented at every tracer `next_at` boundary and a
//! periodic sample (frozen deltas, live occupancy snapshot) is recorded
//! there, so traced runs are byte-identical too.

use super::{Engine, Win, WinSource, RING};
use crate::config::NUM_VCS;

/// What the last completed CPU visit learned about a node's ability to
/// make progress on its own (without a delivery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(super) enum PollState {
    /// No standing decline: the node may accept a pull whenever its CPU is
    /// free (also the conservative state for programs that decline with
    /// [`PollHint::EveryCycle`](crate::PollHint) — they force a wake every
    /// cycle, trading skips for unconditional correctness).
    #[default]
    Open,
    /// The engine-level rate window was closed; re-poll no earlier than
    /// `next_allowed` (read live from the node's flow ledger at wake
    /// computation, since `rate_charge` may move it).
    Rate,
    /// The program declined with `SleepUntilDelivery`: no timed wake at
    /// all. `denials` credit acquisitions failed during the declining
    /// poll; the decline is pure, so the cycle-stepped engines would
    /// repeat exactly that count every idle cycle — replayed in closed
    /// form over skipped windows.
    Asleep { denials: u64 },
}

/// Per-node event-mode bookkeeping, rewritten at each CPU visit.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct NodeEvent {
    pub(super) poll: PollState,
    /// The last visit ended with queued sends that no injection FIFO
    /// could take: pulling more is pointless until an arbitration win
    /// drains an injection FIFO (which clears this).
    pub(super) inject_blocked: bool,
}

/// Engine-wide event-mode state: per-node wake hints plus a one-cycle
/// "freshness" bitset of nodes whose arbitration inputs changed during
/// the current stepped cycle (downstream pop or reservation). A fresh
/// node must be re-arbitrated next cycle, so any freshness suppresses
/// skipping entirely.
pub(super) struct EventState {
    pub(super) nodes: Vec<NodeEvent>,
    fresh: Vec<u64>,
    any_fresh: bool,
}

impl EventState {
    pub(super) fn new(n: usize) -> EventState {
        EventState {
            nodes: vec![NodeEvent::default(); n],
            fresh: vec![0; n.div_ceil(64)],
            any_fresh: false,
        }
    }

    #[inline]
    fn mark_fresh(&mut self, i: usize) {
        self.fresh[i >> 6] |= 1 << (i & 63);
        self.any_fresh = true;
    }

    /// Forget last cycle's freshness marks (called at the start of each
    /// stepped cycle; the marks have served their purpose by suppressing
    /// the skip decision at the previous cycle boundary).
    pub(super) fn clear_fresh(&mut self) {
        if self.any_fresh {
            self.fresh.fill(0);
            self.any_fresh = false;
        }
    }
}

impl Engine {
    /// Note an arbitration win out of node `n` toward `nb` (event mode):
    /// the pop changed `n`'s own head lineup mid-visit (directions the
    /// per-visit summary already passed must be retried next cycle), a
    /// transit pop freed upstream credit, an injection pop freed local
    /// injection space, and the reservation at `nb` may flip the
    /// bubble-escape eligibility (`preferred_blocked`) of any of `nb`'s
    /// neighbours.
    pub(super) fn event_note_win(&mut self, n: usize, nb: usize, win: Win) {
        let ev = self.events.as_mut().expect("event mode");
        ev.mark_fresh(n);
        match win.source {
            WinSource::Transit { fifo } => {
                let up = self.neighbors[n][fifo as usize / NUM_VCS];
                if up != u32::MAX {
                    ev.mark_fresh(up as usize);
                }
            }
            WinSource::Inject { .. } => {
                ev.nodes[n].inject_blocked = false;
            }
        }
        for &m in &self.neighbors[nb] {
            if m != u32::MAX {
                ev.mark_fresh(m as usize);
            }
        }
    }

    /// Note a delivery pop out of transit FIFO `fifo` at `node` (event
    /// mode): the freed space is new credit for the upstream neighbour on
    /// that port.
    pub(super) fn event_note_vc_pop(&mut self, node: usize, fifo: usize) {
        let up = self.neighbors[node][fifo / NUM_VCS];
        if up != u32::MAX {
            self.events
                .as_mut()
                .expect("event mode")
                .mark_fresh(up as usize);
        }
    }

    /// Earliest cycle at which any component can change state, evaluated
    /// at a cycle boundary (`self.now` is the next unstepped cycle).
    /// Returns `self.now` as soon as any immediate work is found.
    fn next_event_cycle(&self) -> u64 {
        let now = self.now;
        let ev = self.events.as_ref().expect("event mode");
        if ev.any_fresh || !self.deliver_q.is_empty() {
            return now;
        }
        // Earliest in-flight arrival. Every launched packet lands within
        // RING cycles (asserted at construction), so one lap suffices.
        let mut e = u64::MAX;
        for off in 0..RING as u64 {
            if !self.ring[((now + off) % RING as u64) as usize].is_empty() {
                e = now + off;
                break;
            }
        }
        if e == now {
            return now;
        }
        for w in 0..self.cpu_active.words.len() {
            let mut bits = self.cpu_active.words[w];
            while bits != 0 {
                let i = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                e = e.min(self.cpu_wake(i));
                if e <= now {
                    return now;
                }
            }
        }
        for w in 0..self.arb_active.words.len() {
            let mut bits = self.arb_active.words[w];
            while bits != 0 {
                let n = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                e = e.min(self.arb_wake(n));
                if e <= now {
                    return now;
                }
            }
        }
        e
    }

    /// Next cycle node `i`'s CPU phase could do anything but a replayable
    /// blocked poll. `cpu_visit` skips cycles with `cpu_free >= t + 1`,
    /// so the first visitable cycle is `floor(cpu_free)` — before that,
    /// even a pending drain cannot run.
    fn cpu_wake(&self, i: usize) -> u64 {
        let n = &self.nodes[i];
        let ev = self.events.as_ref().expect("event mode").nodes[i];
        let ready = (n.cpu_free as u64).max(self.now);
        if !n.reception.is_empty() {
            // A drain mutates real state: never skip past it.
            return ready;
        }
        let mut wake = u64::MAX;
        if (!n.pending.is_empty() || !n.pulled.is_empty()) && !ev.inject_blocked {
            // Queued sends with injection space available: injections
            // happen as soon as the CPU frees up.
            wake = ready;
        }
        if !n.program_done && n.pulled.len() < Self::PULL_THRESHOLD {
            match ev.poll {
                PollState::Open => wake = wake.min(ready),
                PollState::Rate => {
                    // First cycle `t` with `t >= next_allowed`; every
                    // earlier visit is a pure `pacing_blocked_cycles`
                    // increment, replayed in closed form.
                    let open = n.flow.next_allowed.ceil() as u64;
                    wake = wake.min(ready.max(open));
                }
                PollState::Asleep { .. } => {}
            }
        }
        wake
    }

    /// Next cycle node `n`'s arbitration could win an output. Heads on
    /// *free* links already lost their last stepped arbitration on
    /// downstream feasibility, which only a stepped event can change
    /// (fresh marks handle that); so the only timed wake is a busy link
    /// becoming usable. `busy_until == now` must wake now: the link was
    /// busy during the last stepped cycle but is usable this cycle.
    fn arb_wake(&self, n: usize) -> u64 {
        let node = &self.nodes[n];
        if node.vc_mask == 0 && node.inj_mask == 0 {
            return u64::MAX;
        }
        let dirs = self.sendable_dirs(n);
        let mut wake = u64::MAX;
        for d in 0..6usize {
            if dirs & (1 << d) == 0 || self.neighbors[n][d] == u32::MAX {
                continue;
            }
            let busy = self.link_busy_until[n * 6 + d];
            if busy >= self.now {
                wake = wake.min(busy);
            }
        }
        wake
    }

    /// Apply the per-cycle blocked-poll counter increments the
    /// cycle-stepped engines would have made over the skipped window
    /// `[self.now, stop)`, in closed form. For each cpu-active node the
    /// eligible cycles are those from `max(now, floor(cpu_free))` on
    /// (earlier ones are CPU-booked no-ops); `stop` never exceeds the
    /// node's own wake, so a `Rate` window is closed and an `Asleep`
    /// decline repeats verbatim across the whole eligible span.
    fn replay_blocked_counters(&mut self, stop: u64) {
        for w in 0..self.cpu_active.words.len() {
            let mut bits = self.cpu_active.words[w];
            while bits != 0 {
                let i = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let n = &self.nodes[i];
                if n.program_done
                    || n.pulled.len() >= Self::PULL_THRESHOLD
                    || !n.reception.is_empty()
                {
                    continue;
                }
                let from = (n.cpu_free as u64).max(self.now);
                if stop <= from {
                    continue;
                }
                let cycles = stop - from;
                match self.events.as_ref().expect("event mode").nodes[i].poll {
                    PollState::Rate => self.stats.pacing_blocked_cycles += cycles,
                    PollState::Asleep { denials } if denials > 0 => {
                        self.stats.credit_blocked_events += denials * cycles;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Jump `now` to the next event cycle, replaying blocked-poll
    /// counters over the skipped window and recording the periodic trace
    /// samples that fall inside it. Bounded so the `run` loop's watchdog
    /// and cycle-limit checks fire at exactly the cycle the cycle-stepped
    /// engines would report.
    pub(super) fn fast_forward(&mut self) {
        let mut e = self.next_event_cycle();
        if e <= self.now {
            return;
        }
        let watchdog_fire = self
            .last_progress
            .saturating_add(self.cfg.watchdog_cycles)
            .saturating_add(1);
        e = e.min(watchdog_fire).min(self.cfg.max_cycles);
        while self.now < e {
            let stop = match &self.tracer {
                Some(tr) => e.min(tr.next_at),
                None => e,
            };
            // `next_at > now` is an invariant here: `step`/`fast_forward`
            // record any due sample immediately, and recording advances
            // `next_at` past the sample cycle.
            debug_assert!(stop > self.now, "tracer boundary must advance");
            self.replay_blocked_counters(stop);
            self.now = stop;
            if let Some(tr) = &self.tracer {
                if self.now >= tr.next_at {
                    self.record_trace_sample(false);
                }
            }
        }
    }
}
