//! The conservation-law oracle: an independent re-derivation of the
//! simulator's invariants, checked at every cycle boundary and once more
//! at quiesce. Enabled by [`SimConfig`](crate::SimConfig)
//! `::check_invariants`.
//!
//! Under the event-driven engine mode, the per-cycle sweep runs at every
//! *stepped* cycle. Skipped cycles need no sweep: skipping is only legal
//! when the network state is provably frozen, so the checks would examine
//! the same state they just passed on.
//!
//! Oracle runs execute the sharded engine *sequentially* regardless of
//! the configured shard count (see the module docs of [`super`]): the
//! hooks fire in the exact global order the checks assume, and the
//! cycle-boundary sweep can read the credit array at rest.

use super::Engine;
use crate::node::vc_fifo_index;
use crate::packet::Packet;
use std::sync::atomic::Ordering::Relaxed;

/// Independent re-derivation of the simulator's conservation laws, enabled
/// by [`SimConfig::check_invariants`](crate::SimConfig). Per-packet state
/// lives in flat vectors indexed by the engine's sequential packet ids
/// (`Packet` itself stays untouched — its size is pinned). Boxed behind an
/// `Option` on the engine like the tracer: disabled, the whole oracle costs
/// one predictable branch per cycle and per packet event.
///
/// Violations panic immediately with the cycle number, because a broken
/// invariant means every statistic after that point is untrustworthy.
pub(super) struct Oracle {
    /// Per packet id: minimal hop count of its `HopPlan` at injection.
    planned_hops: Vec<u32>,
    /// Per packet id: link crossings observed so far.
    taken_hops: Vec<u32>,
    /// Per packet id: payload bytes recorded at injection.
    payload_bytes: Vec<u32>,
    /// Per packet id: whether it has been drained from a reception FIFO.
    delivered: Vec<bool>,
    /// Per packet id: whether a link fault dropped it in flight.
    dropped: Vec<bool>,
    delivered_count: u64,
    dropped_count: u64,
    injected_payload: u64,
    delivered_payload: u64,
    dropped_payload: u64,
}

impl Oracle {
    pub(super) fn new() -> Oracle {
        Oracle {
            planned_hops: Vec::new(),
            taken_hops: Vec::new(),
            payload_bytes: Vec::new(),
            delivered: Vec::new(),
            dropped: Vec::new(),
            delivered_count: 0,
            dropped_count: 0,
            injected_payload: 0,
            delivered_payload: 0,
            dropped_payload: 0,
        }
    }

    /// Record a freshly injected packet (plan not yet advanced). Called at
    /// the section-B id fix-up — the first point the final id exists.
    pub(super) fn on_inject(&mut self, pkt: &Packet) {
        assert_eq!(
            pkt.id as usize,
            self.planned_hops.len(),
            "invariant violated: packet ids must be dense and sequential"
        );
        self.planned_hops.push(pkt.plan.total_hops());
        self.taken_hops.push(0);
        self.payload_bytes.push(pkt.payload_bytes);
        self.delivered.push(false);
        self.dropped.push(false);
        self.injected_payload += pkt.payload_bytes as u64;
    }

    /// Rebase packet `id`'s hop budget after a fault detour: the re-planned
    /// route (`remaining` hops from the *downstream* node) supersedes the
    /// minimal plan recorded at injection. Called immediately before the
    /// detour hop's own `on_hop`, so afterwards the exact-hop-count check
    /// at delivery holds again.
    pub(super) fn on_detour(&mut self, id: u64, remaining: u32) {
        let i = id as usize;
        self.planned_hops[i] = self.taken_hops[i] + 1 + remaining;
    }

    /// Record that a link fault dropped `pkt` in flight: it must be a
    /// known packet that was neither delivered nor already dropped.
    pub(super) fn on_drop(&mut self, pkt: &Packet) {
        let i = pkt.id as usize;
        assert!(
            i < self.dropped.len(),
            "invariant violated: fault dropped unknown packet {}",
            pkt.id
        );
        assert!(
            !self.delivered[i] && !self.dropped[i],
            "invariant violated: packet {} dropped after delivery or twice",
            pkt.id
        );
        self.dropped[i] = true;
        self.dropped_count += 1;
        self.dropped_payload += pkt.payload_bytes as u64;
    }

    /// Record one link crossing of packet `id`.
    pub(super) fn on_hop(&mut self, id: u64, t: u64) {
        let i = id as usize;
        self.taken_hops[i] += 1;
        assert!(
            self.taken_hops[i] <= self.planned_hops[i],
            "invariant violated: packet {id} exceeded its planned {} hops at cycle {t}",
            self.planned_hops[i]
        );
    }

    /// Record the delivery of `pkt` (drained from a reception FIFO).
    pub(super) fn on_deliver(&mut self, pkt: &Packet, t: u64) {
        let i = pkt.id as usize;
        assert!(
            i < self.delivered.len(),
            "invariant violated: delivery of unknown packet {} at cycle {t}",
            pkt.id
        );
        assert!(
            !self.delivered[i],
            "invariant violated: packet {} delivered twice (cycle {t})",
            pkt.id
        );
        assert!(
            !self.dropped[i],
            "invariant violated: packet {} delivered after a fault dropped it (cycle {t})",
            pkt.id
        );
        assert!(
            pkt.plan.is_done(),
            "invariant violated: packet {} delivered with hops remaining (cycle {t})",
            pkt.id
        );
        assert_eq!(
            self.taken_hops[i], self.planned_hops[i],
            "invariant violated: packet {} took {} hops, plan was {} (cycle {t})",
            pkt.id, self.taken_hops[i], self.planned_hops[i]
        );
        assert_eq!(
            self.payload_bytes[i], pkt.payload_bytes,
            "invariant violated: packet {} payload changed in flight (cycle {t})",
            pkt.id
        );
        self.delivered[i] = true;
        self.delivered_count += 1;
        self.delivered_payload += pkt.payload_bytes as u64;
    }
}

impl Engine {
    /// Cycle-boundary oracle sweep (end of cycle `t`): the oracle's
    /// independent packet ledger must agree with `NetStats`, the live
    /// counter must telescope (injected − delivered), every FIFO's
    /// occupancy must fit its capacity, and every transit-VC credit cell
    /// must conserve chunks: available credit + physically occupied +
    /// in flight toward the cell = capacity. The conservation law is the
    /// sharded engine's load-bearing invariant — a credit leaked (or
    /// double-released) by any section of any shard breaks it at the very
    /// next boundary.
    pub(super) fn oracle_cycle_check(&self, t: u64) {
        let o = self.oracle.as_ref().expect("caller checked");
        let injected = o.planned_hops.len() as u64;
        assert_eq!(
            injected, self.stats.packets_injected,
            "invariant violated: oracle saw {injected} injections, stats say {} (cycle {t})",
            self.stats.packets_injected
        );
        assert_eq!(
            o.delivered_count, self.stats.packets_delivered,
            "invariant violated: oracle saw {} deliveries, stats say {} (cycle {t})",
            o.delivered_count, self.stats.packets_delivered
        );
        assert_eq!(
            o.dropped_count, self.stats.dropped_by_fault,
            "invariant violated: oracle saw {} fault drops, stats say {} (cycle {t})",
            o.dropped_count, self.stats.dropped_by_fault
        );
        assert_eq!(
            self.live_packets,
            injected - o.delivered_count - o.dropped_count,
            "invariant violated: live packets must equal injected − delivered − dropped (cycle {t})"
        );
        // Chunks launched toward each transit cell but not yet arrived:
        // at a cycle boundary every such packet sits in some shard's
        // in-flight ring (outboxes and staging mailboxes drain within
        // the cycle that filled them).
        let vc_cells = self.vc_cells;
        let mut inflight = vec![0u64; self.nodes.len() * vc_cells];
        for sd in &self.shards {
            for slot in &sd.ring {
                for arr in slot {
                    let cell = arr.node as usize * vc_cells
                        + vc_fifo_index(arr.port as usize, arr.pkt.vc.index());
                    inflight[cell] += arr.pkt.chunks as u64;
                }
            }
        }
        for (ni, node) in self.nodes.iter().enumerate() {
            for (c, f) in node.vcs.iter().enumerate() {
                let cell = ni * vc_cells + c;
                let credit = self.credits[cell].load(Relaxed) as u64;
                let occupied = f.occupied_chunks() as u64;
                assert_eq!(
                    credit + occupied + inflight[cell],
                    f.capacity_chunks() as u64,
                    "invariant violated: credit cell (node {ni}, fifo {c}) leaked \
                     ({credit} credit + {occupied} occupied + {} in flight ≠ {} capacity, cycle {t})",
                    inflight[cell],
                    f.capacity_chunks()
                );
            }
            for f in node.inj.iter().chain(std::iter::once(&node.reception)) {
                assert!(
                    f.occupied_chunks() <= f.capacity_chunks(),
                    "invariant violated: FIFO at node {ni} over capacity \
                     ({} occupied > {}, cycle {t})",
                    f.occupied_chunks(),
                    f.capacity_chunks()
                );
            }
        }
    }

    /// Quiesce-time oracle sweep, run once the simulation reports
    /// complete: every injected packet was delivered exactly once with
    /// exactly its planned hops, payload bytes are conserved end-to-end,
    /// the per-packet hop ledger sums to the `NetStats` totals, every
    /// FIFO has drained, every credit cell has telescoped back to full
    /// capacity, and no packets remain in flight.
    pub(super) fn oracle_quiesce_check(&self) {
        let o = self.oracle.as_ref().expect("caller checked");
        let injected = o.planned_hops.len() as u64;
        // Fault-aware exactly-once: every packet was delivered or dropped
        // by a fault, exactly once — the telescoped counts and the
        // per-packet flags must both agree.
        assert_eq!(
            o.delivered_count + o.dropped_count,
            injected,
            "invariant violated: {} of {injected} packets neither delivered nor \
             accounted as dropped_by_fault",
            injected - o.delivered_count - o.dropped_count
        );
        for (id, (&d, &x)) in o.delivered.iter().zip(&o.dropped).enumerate() {
            assert!(
                d ^ x,
                "invariant violated: packet {id} {} at quiesce",
                if d {
                    "both delivered and dropped"
                } else {
                    "neither delivered nor dropped"
                }
            );
        }
        // Byte conservation, fault-aware: every injected payload byte is
        // either delivered or attributed to a fault drop.
        assert_eq!(
            o.injected_payload,
            o.delivered_payload + o.dropped_payload,
            "invariant violated: payload bytes not conserved end-to-end \
             (delivered + dropped_by_fault ≠ injected)"
        );
        assert_eq!(
            o.dropped_count, self.stats.dropped_by_fault,
            "invariant violated: oracle drop ledger disagrees with stats"
        );
        assert_eq!(
            o.delivered_payload, self.stats.payload_bytes_delivered,
            "invariant violated: oracle payload ledger disagrees with stats"
        );
        let ledger_hops: u64 = o.taken_hops.iter().map(|&h| h as u64).sum();
        let stats_hops: u64 = self.stats.hops_taken.iter().sum();
        assert_eq!(
            ledger_hops, stats_hops,
            "invariant violated: per-packet hop ledger disagrees with stats"
        );
        for (ni, node) in self.nodes.iter().enumerate() {
            assert!(
                !node.holds_packets(),
                "invariant violated: node {ni} still holds packets at quiesce"
            );
            for (c, f) in node.vcs.iter().enumerate() {
                let credit = self.credits[ni * self.vc_cells + c].load(Relaxed);
                assert!(
                    f.is_empty() && f.occupied_chunks() == 0 && credit == f.capacity_chunks(),
                    "invariant violated: transit FIFO (node {ni}, fifo {c}) not drained at \
                     quiesce ({} packets, {} occupied, {credit} of {} credits returned)",
                    f.len(),
                    f.occupied_chunks(),
                    f.capacity_chunks()
                );
            }
            for f in node.inj.iter().chain(std::iter::once(&node.reception)) {
                assert!(
                    f.is_empty() && f.occupied_chunks() == 0,
                    "invariant violated: FIFO at node {ni} not drained at quiesce \
                     ({} packets, {} occupied)",
                    f.len(),
                    f.occupied_chunks()
                );
            }
        }
        assert!(
            self.shards
                .iter()
                .all(|sd| sd.ring.iter().all(|slot| slot.is_empty())),
            "invariant violated: packets still in flight at quiesce"
        );
    }
}
