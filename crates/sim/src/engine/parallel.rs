//! Threaded execution of the sharded cycle: one scoped thread per shard,
//! two barriers per cycle (A→B and B→C; the scope join is the closing
//! barrier).
//!
//! This file contains *no simulation logic*. It only partitions the
//! engine's per-node storage into the same disjoint slices
//! [`Engine::shard_ctx`](super::Engine) hands out sequentially, and runs
//! the identical [`Shard`] section methods on worker threads. Correctness
//! therefore reduces to one claim, checked by the conformance suite and
//! the equivalence fuzzer: the sections never race. Section A touches
//! only a shard's own slices plus its own credit cells; section B reads
//! foreign state only through credit cells whose unique reader is the
//! executing shard; section C touches only mailboxes addressed to the
//! executing shard. The barriers order A's credit releases before B's
//! credit reads, and B's mailbox hand-off before C's drain.
//!
//! Threads are spawned fresh each cycle. That costs a few microseconds of
//! spawn/join per cycle — noise against the multi-millisecond cycles of
//! the large-torus workloads sharding exists for, and it keeps the engine
//! free of persistent worker state (no channels, no parked threads to
//! poison on panic: a panicking section propagates out of the scope
//! immediately).

use super::phases::{Router, Shard};
use super::Engine;
use crate::perf::ShardPerf;
use std::sync::Barrier;

/// Split `slice` into one chunk per shard, cutting at `bounds[s] * scale`.
fn split_by_bounds<'a, T>(
    mut slice: &'a mut [T],
    bounds: &[usize],
    scale: usize,
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len() - 1);
    let mut off = 0;
    for s in 0..bounds.len() - 1 {
        let end = bounds[s + 1] * scale;
        let (head, tail) = slice.split_at_mut(end - off);
        out.push(head);
        slice = tail;
        off = end;
    }
    debug_assert!(slice.is_empty(), "bounds must cover the whole slice");
    out
}

impl Engine {
    /// Run one cycle's three sections with one thread per shard. Only
    /// called when `self.parallel` holds, which guarantees the oracle and
    /// the event-driven bookkeeping are absent — the two components whose
    /// state is inherently global.
    pub(super) fn step_parallel(&mut self, t: u64) {
        let nshards = self.bounds.len() - 1;
        let router = Router {
            cfg: &self.cfg,
            neighbors: &self.neighbors,
            credits: &self.credits,
            // Read-only within the cycle: liveness flips only between
            // cycles (`apply_fault_transitions`), never inside a section.
            link_alive: (!self.fault_alive.is_empty()).then_some(&self.fault_alive[..]),
            ports: self.ports,
            vc_cells: self.vc_cells,
            ndims: self.part.ndims(),
        };
        let part = &self.part;
        let shard_of = &self.shard_of[..];
        let counts = &self.counts[..];
        let staging = &self.staging[..];
        let next_id0 = self.next_packet_id;
        let full_scan = self.full_scan;
        let nodes = split_by_bounds(&mut self.nodes, &self.bounds, 1);
        let programs = split_by_bounds(&mut self.programs, &self.bounds, 1);
        let ports = self.ports;
        let link_busy = split_by_bounds(&mut self.link_busy_until, &self.bounds, ports);
        let link_stats: Vec<&mut [u64]> = if self.cfg.detailed_link_stats {
            split_by_bounds(&mut self.stats.link_busy_per_link, &self.bounds, ports)
        } else {
            (0..nshards).map(|_| -> &mut [u64] { &mut [] }).collect()
        };
        let perf: Vec<Option<&mut ShardPerf>> = match self.perf.as_deref_mut() {
            Some(p) => p.profile.shards.iter_mut().map(Some).collect(),
            None => (0..nshards).map(|_| None).collect(),
        };
        let ctxs: Vec<Shard<'_>> = nodes
            .into_iter()
            .zip(programs)
            .zip(link_busy)
            .zip(link_stats)
            .zip(self.shards.iter_mut())
            .zip(self.cycle_stats.iter_mut())
            .zip(perf)
            .enumerate()
            .map(
                |(s, ((((((nodes, programs), link_busy_until), link_stats), sd), cs), perf))| {
                    Shard {
                        router,
                        part,
                        shard_of,
                        counts,
                        staging,
                        nshards,
                        si: s,
                        base: self.bounds[s],
                        next_id0,
                        full_scan,
                        nodes,
                        programs,
                        link_busy_until,
                        link_stats,
                        sd,
                        cs,
                        events: None,
                        oracle: None,
                        perf,
                    }
                },
            )
            .collect();
        let barrier = Barrier::new(nshards);
        std::thread::scope(|scope| {
            for mut shard in ctxs {
                let barrier = &barrier;
                scope.spawn(move || {
                    shard.section_a(t);
                    shard.timed_wait(barrier, BarrierSlot::A);
                    shard.section_b(t);
                    shard.timed_wait(barrier, BarrierSlot::B);
                    shard.section_c();
                });
            }
        });
    }
}

/// Which per-cycle barrier a [`Shard::timed_wait`] call is parked at.
#[derive(Clone, Copy)]
enum BarrierSlot {
    /// The section A→B barrier.
    A,
    /// The section B→C barrier.
    B,
}

impl Shard<'_> {
    /// `barrier.wait()`, attributing the park time to this shard's
    /// profiler slot when profiling is on. With profiling off this is the
    /// bare wait plus one predictable branch.
    fn timed_wait(&mut self, barrier: &Barrier, slot: BarrierSlot) {
        let Some(p) = self.perf.as_deref_mut() else {
            barrier.wait();
            return;
        };
        let t0 = std::time::Instant::now();
        barrier.wait();
        let waited = t0.elapsed().as_secs_f64();
        match slot {
            BarrierSlot::A => p.barrier_a_wait_secs += waited,
            BarrierSlot::B => p.barrier_b_wait_secs += waited,
        }
    }
}
