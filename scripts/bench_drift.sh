#!/usr/bin/env sh
# Warn-only bench-drift canary: time a quick (1-rep) engine-bench pass and
# compare it against the committed BENCH_engine.json with a generous
# tolerance. Wall-clock on shared runners is noisy, so this never fails
# the build — it exists to surface order-of-magnitude regressions (or a
# changed simulated cycle count, which is never noise) in the CI log.
#
# Usage: scripts/bench_drift.sh [tolerance]   (default 3.0)
set -eu
cd "$(dirname "$0")/.."
tolerance="${1:-3.0}"
fresh="$(mktemp /tmp/bench_engine_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT
cargo run --release -q -p bgl-bench --bin engine-bench -- --reps 1 --out "$fresh"
cargo run --release -q -p bgl-bench --bin bench-drift -- \
    BENCH_engine.json "$fresh" --tolerance "$tolerance"
