//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench targets compiling and runnable without crates.io:
//! each `bench_function` runs its routine a handful of times and prints
//! the mean wall time. No warm-up, outlier analysis, or HTML reports —
//! numbers are indicative only.

use std::time::{Duration, Instant};

/// How many measured iterations the stand-in runs per benchmark.
const RUNS: u32 = 3;

/// Re-export so `criterion::black_box` call sites work.
pub use std::hint::black_box;

/// Entry point handed to each benchmark function by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(None, &id.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(Some(&self.name), &id.into(), f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` is the measured region.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Measure `routine`, discarding its output.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_bench(group: Option<&str>, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    for _ in 0..RUNS {
        f(&mut b);
    }
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.iters == 0 {
        eprintln!("  {label}: no iterations");
    } else {
        eprintln!("  {label}: {:?}/iter", b.elapsed / b.iters);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(10);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, RUNS);
    }

    criterion_group!(demo_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        demo_group();
    }
}
