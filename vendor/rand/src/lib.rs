//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what this workspace uses: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range(..)` over unsigned integer ranges. The generator is
//! splitmix64 — statistically fine for workload shuffles, but the stream
//! differs from the real crate's `SmallRng`, so absolute cycle counts
//! from seeded workloads are not comparable with runs built against
//! crates.io rand.

/// Core pseudo-random generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`] (the standard distribution).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1): the usual multiply-by-2^-53.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (splitmix64 stand-in for rand's `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let x = rng.gen_range(0u32..10);
            assert!(x < 10);
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            seen_lo |= y == 0;
            seen_hi |= y == 4;
        }
        assert!(seen_lo && seen_hi, "inclusive range covers both endpoints");
    }
}
