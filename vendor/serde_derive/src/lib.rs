//! Derive macros for the offline `serde` stand-in.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields;
//! * enums whose variants are unit or have named fields.
//!
//! Tuple structs, tuple variants, generics and `#[serde(...)]` attributes
//! are rejected with a compile error. Generated code targets the sibling
//! `serde` crate's `Value`-tree traits. The input token stream is parsed
//! by hand (no `syn`/`quote` — the build container is offline) and the
//! output is assembled as a string, then re-parsed into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

struct Definition {
    name: String,
    body: Body,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_definition(input) {
        Ok(def) => generate_serialize(&def)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_definition(input) {
        Ok(def) => generate_deserialize(&def)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("error tokens parse")
}

/// Parse `struct Name { .. }` / `enum Name { .. }` out of the derive input.
fn parse_definition(input: TokenStream) -> Result<Definition, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde stand-in: generic type `{name}` is not supported"
            ))
        }
        other => {
            return Err(format!(
                "serde stand-in: `{name}` must have a braced body (tuple/unit types \
                 are not supported), got {other:?}"
            ))
        }
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(group.stream())?),
        "enum" => Body::Enum(parse_variants(group.stream())?),
        other => return Err(format!("expected `struct` or `enum`, got `{other}`")),
    };
    Ok(Definition { name, body })
}

fn skip_attributes_and_visibility(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) {
    loop {
        match tokens.peek() {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed group
            }
            // `pub`, optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, skipping attributes, visibility
/// and the type tokens (only names are needed; commas inside `<...>` are
/// tracked by angle-bracket depth, other nesting hides inside groups).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                Some(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stand-in: tuple variant `{name}` is not supported"
                ))
            }
            _ => None,
        };
        match tokens.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant (`Variant = 3`): skip to comma.
                for tok in tokens.by_ref() {
                    if let TokenTree::Punct(p) = &tok {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                }
                variants.push(Variant { name, fields });
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

/// `vec![("a", ser(a)), ...]` expression for a named-field list, with
/// each field rendered by `access` (e.g. `&self.a` or the binding `a`).
fn object_expr(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({:?}), ::serde::Serialize::to_value({})),",
                f.name,
                access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(""))
}

fn generate_serialize(def: &Definition) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::Struct(fields) => object_expr(fields, |f| format!("&self.{f}")),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        format!(
                            "{name}::{v} {{ {bind} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            v = v.name,
                            bind = bindings.join(", "),
                            inner = object_expr(fields, |f| f.to_string()),
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

fn generate_deserialize(def: &Definition) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{0}: ::serde::de_field(v, {0:?})?,", f.name))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(""))
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let struct_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{0}: ::serde::de_field(inner, {0:?})?,", f.name))
                        .collect();
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                        v = v.name,
                        inits = inits.join("")
                    )
                })
                .collect();
            format!(
                "match v {{\
                     ::serde::Value::Str(s) => match s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                     }},\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\
                         let (variant, inner) = &fields[0];\
                         match variant.as_str() {{\
                             {struct_arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                         }}\
                     }}\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {name}, got {{other:?}}\"))),\
                 }}",
                unit_arms = unit_arms.join(""),
                struct_arms = struct_arms.join(""),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\
                 {body}\
             }}\
         }}"
    )
}
