//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON through the sibling `serde` stand-in's
//! [`Value`] tree. Implements the functions this workspace calls:
//! [`to_string`], [`to_string_pretty`] and [`from_str`]. Object fields
//! keep their declaration order, so output is byte-stable across runs.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON rendering/parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            // `{}` on f64 never prints exponents for the magnitudes used
            // here and omits a trailing `.0`, which still parses as a
            // JSON number.
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, got `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, got `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair handling for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => unreachable!("loop stops only at quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("8x8x8".to_string())),
            ("cycles".to_string(), Value::U64(123_456)),
            ("frac".to_string(), Value::F64(0.25)),
            ("neg".to_string(), Value::I64(-3)),
            ("flag".to_string(), Value::Bool(true)),
            ("gone".to_string(), Value::Null),
            (
                "xs".to_string(),
                Value::Array(vec![Value::U64(1), Value::U64(2)]),
            ),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        assert_eq!(
            compact,
            r#"{"name":"8x8x8","cycles":123456,"frac":0.25,"neg":-3,"flag":true,"gone":null,"xs":[1,2]}"#
        );
        let mut p = Parser {
            bytes: compact.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.value().unwrap(), v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Object(vec![("a".to_string(), Value::Array(vec![Value::U64(1)]))]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f\u{1F600}";
        let mut out = String::new();
        write_string(&mut out, original);
        let mut p = Parser {
            bytes: out.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.string().unwrap(), original);
        // Surrogate-pair escapes parse too.
        let escaped = "\"\\ud83d\\ude00\"";
        let mut p = Parser {
            bytes: escaped.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.string().unwrap(), "\u{1F600}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
