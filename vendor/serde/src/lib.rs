//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the real serde cannot be
//! fetched. This crate implements the subset the workspace uses — derived
//! `Serialize`/`Deserialize` on named-field structs and on enums with unit
//! or struct variants — through a simple self-describing [`Value`] tree:
//! `Serialize` lowers a type into a [`Value`], `Deserialize` rebuilds it,
//! and `serde_json` (the sibling stand-in) renders/parses JSON from that
//! tree. The derive macros live in `serde_derive` and are re-exported
//! under the usual names when the `derive` feature is on.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's data model).
///
/// Objects preserve field order so rendered JSON is stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values only; non-negative parse as `U64`).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lower into the value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent. Errors by
    /// default; `Option<T>` overrides it to yield `None` (matching
    /// serde_derive's treatment of optional fields).
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Deserialize field `name` of object `v` (used by derived impls).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field),
        None => T::from_missing(name),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::custom(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for std::num::NonZeroUsize {
    fn to_value(&self) -> Value {
        Value::U64(self.get() as u64)
    }
}

impl Deserialize for std::num::NonZeroUsize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = usize::from_value(v)?;
        std::num::NonZeroUsize::new(n)
            .ok_or_else(|| Error::custom("expected non-zero integer, got 0"))
    }

    /// Absent fields default to one: pre-existing configs written before a
    /// `NonZeroUsize` knob was added keep deserializing with the knob off.
    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(std::num::NonZeroUsize::new(1).expect("1 is non-zero"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    other => return Err(Error::custom(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::F64(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                Ok(($($t::from_value(
                    items.get($i).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_missing_field_is_none() {
        let obj = Value::Object(vec![]);
        let got: Option<u32> = de_field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        let err: Result<u32, _> = de_field(&obj, "absent");
        assert!(err.is_err());
    }

    #[test]
    fn arrays_round_trip() {
        let v = vec![1u64, 2, 3].to_value();
        assert_eq!(Vec::<u64>::from_value(&v).unwrap(), vec![1, 2, 3]);
        let a = [1u64, 2, 3].to_value();
        assert_eq!(<[u64; 3]>::from_value(&a).unwrap(), [1, 2, 3]);
        assert!(<[u64; 4]>::from_value(&a).is_err());
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
