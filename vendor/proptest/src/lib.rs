//! Offline stand-in for the `proptest` crate.
//!
//! Random-sampling property tests with the real crate's surface syntax:
//! the `proptest!` macro, `Strategy` combinators (`prop_map`,
//! `prop_filter`), `any::<T>()`, range/tuple strategies,
//! `prop::sample::select`, `prop::collection::vec`, and the
//! `prop_assert*` macros. Differences from the real crate: no shrinking
//! (a failing case reports its inputs but is not minimized) and a fixed
//! deterministic seed derived from the test name, so runs are
//! reproducible offline.
//!
//! Like the real crate, failing case seeds are persisted to a
//! `proptest-regressions/` directory next to the invoking crate's
//! `Cargo.toml` (one file per source file, `cc <hex-state>` lines) and
//! replayed before the random cases on subsequent runs, so a CI failure
//! reproduces locally from the committed seed. Persistence is opt-in per
//! crate: seeds are only written when the `proptest-regressions/`
//! directory already exists (commit it, even empty, to enable).

/// Test-runner configuration and error types.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to sample.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Failure with a message (what `prop_assert!` produces).
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 stream used to drive sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from the test's name: deterministic per test,
        /// different across tests.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0x51_7CC1_B727_2202u64;
            for b in name.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { state: seed }
        }

        /// The current stream state. Snapshot it before sampling a case
        /// so a failure can be persisted and replayed byte-identically
        /// via [`TestRng::from_state`].
        pub fn state(&self) -> u64 {
            self.state
        }

        /// An RNG resumed from a state captured by [`TestRng::state`] (or
        /// loaded from a `proptest-regressions/` file).
        pub fn from_state(state: u64) -> TestRng {
            TestRng { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Best-effort text of a caught panic payload (what the `proptest!`
    /// runner reports when a case panics rather than `prop_assert`-fails).
    pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

/// Failing-seed persistence: the `proptest-regressions/` files.
pub mod regressions {
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failing cases of the proptest suites in this source file.
# Each `cc <hex>` line is a TestRng state; persisted cases are replayed
# before the random cases on every run. Commit this file (the directory
# must exist for new failures to be recorded).
";

    /// Regression file for `source_file` (a `file!()` path): one file per
    /// source basename under `<manifest_dir>/proptest-regressions/`.
    pub fn path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let base = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{base}.txt"))
    }

    /// Persisted seeds, oldest first. Missing/unreadable files and
    /// non-`cc` lines are ignored.
    pub fn load(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|l| {
                l.trim()
                    .strip_prefix("cc ")
                    .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            })
            .collect()
    }

    /// Record `state` as a failing seed. Returns whether it is now on
    /// disk. No-op (returning false) when the `proptest-regressions/`
    /// directory does not exist — persistence is opt-in per crate.
    pub fn persist(path: &Path, state: u64) -> bool {
        let Some(dir) = path.parent() else {
            return false;
        };
        if !dir.is_dir() {
            return false;
        }
        if load(path).contains(&state) {
            return true;
        }
        let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| HEADER.to_string());
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&format!("cc {state:016x}\n"));
        std::fs::write(path, text).is_ok()
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Keep only values satisfying `pred` (resamples on rejection).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive samples: {}",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_uint_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    if span == 0 {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_uint_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary_sample(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary_sample(rng))
        }
    }

    /// The strategy [`any`] returns.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `prop::sample::select` support.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among the given values.
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Choose uniformly from `values` (which must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }
}

/// `prop::collection::vec` support.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with random length in a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max_exclusive - self.min) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` samples with length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module path used for `prop::sample::select` etc.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Define property tests. Mirrors the real macro's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expand one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Seeds persisted by earlier failures replay before the
            // random cases; a fresh failure is persisted (when the
            // crate's proptest-regressions/ directory exists) and named
            // in the panic so it reproduces anywhere.
            let reg_path = $crate::regressions::path(env!("CARGO_MANIFEST_DIR"), file!());
            let persisted = $crate::regressions::load(&reg_path);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let total = persisted.len() as u32 + config.cases;
            for case in 0..total {
                let replay = (case as usize) < persisted.len();
                let seed = if replay {
                    persisted[case as usize]
                } else {
                    rng.state()
                };
                let mut case_rng = $crate::test_runner::TestRng::from_state(seed);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut case_rng);)+
                if !replay {
                    // Continue the main stream exactly where this case's
                    // sampling left it (replays never perturb it).
                    rng = case_rng;
                }
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                let failure: ::std::option::Option<::std::string::String> = match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) =>
                        ::std::option::Option::None,
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) =>
                        ::std::option::Option::Some(::std::string::ToString::to_string(&e)),
                    ::std::result::Result::Err(payload) => ::std::option::Option::Some(
                        $crate::test_runner::panic_message(payload.as_ref()),
                    ),
                };
                if let ::std::option::Option::Some(msg) = failure {
                    let saved = $crate::regressions::persist(&reg_path, seed);
                    panic!(
                        "proptest {} failed at case {}/{} (seed cc {:016x}{}): {}",
                        stringify!($name),
                        case + 1,
                        total,
                        seed,
                        if saved { ", persisted" } else { "" },
                        msg
                    );
                }
            }
        }
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure fails only the current case
/// (reported with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 1u16..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn filter_and_map_compose(
            v in (1u16..=6, 1u16..=6)
                .prop_filter("sum >= 4", |(a, b)| a + b >= 4)
                .prop_map(|(a, b)| (a as u32) * (b as u32))
        ) {
            prop_assert!(v >= 3);
        }

        #[test]
        fn select_and_vec_sample(
            m in prop::sample::select(vec![8u64, 64, 512]),
            xs in prop::collection::vec(any::<u8>(), 1..10),
        ) {
            prop_assert!([8, 64, 512].contains(&m));
            prop_assert!(!xs.is_empty() && xs.len() < 10);
        }

        #[test]
        fn early_ok_return_works(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn regression_seeds_round_trip() {
        let dir = std::env::temp_dir().join(format!("proptest-stub-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        let p = crate::regressions::path(dir.to_str().unwrap(), "tests/example.rs");
        assert!(p.ends_with("proptest-regressions/example.txt"));
        assert!(crate::regressions::load(&p).is_empty());
        assert!(crate::regressions::persist(&p, 0xdead_beef));
        assert!(crate::regressions::persist(&p, 0x1234));
        assert!(
            crate::regressions::persist(&p, 0x1234),
            "dedup is idempotent"
        );
        assert_eq!(crate::regressions::load(&p), vec![0xdead_beef, 0x1234]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_without_directory_is_a_noop() {
        let dir = std::env::temp_dir().join(format!("proptest-stub-no-{}", std::process::id()));
        let p = crate::regressions::path(dir.to_str().unwrap(), "x.rs");
        assert!(!crate::regressions::persist(&p, 7));
        assert!(crate::regressions::load(&p).is_empty());
    }

    #[test]
    fn replayed_state_reproduces_the_stream() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let snapshot = a.state();
        let expected = (a.next_u64(), a.next_u64());
        let mut b = crate::test_runner::TestRng::from_state(snapshot);
        assert_eq!((b.next_u64(), b.next_u64()), expected);
    }

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
