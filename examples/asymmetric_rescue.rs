//! The paper's headline result in one runnable scene: on an asymmetric
//! torus, the randomized adaptive direct all-to-all (AR) loses a quarter or
//! more of the machine's bisection to in-network congestion, and the Two
//! Phase Schedule gets it back — without touching the hardware.
//!
//! ```text
//! cargo run --release --example asymmetric_rescue [shape]
//! ```

use bgl_alltoall::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args.first().map(String::as_str).unwrap_or("8x8x16");
    let part: Partition = shape.parse().expect("valid shape");
    assert!(
        !part.is_symmetric(),
        "pick an asymmetric shape (e.g. 8x8x16, 16x8x8, 8x32x16)"
    );
    let params = MachineParams::bgl();
    let p = part.num_nodes();
    let m = 1872; // packs into full 256-byte packets (1872+48 = 8×240)
    let coverage = (120_000.0 / p as f64).clamp(0.02, 1.0);
    let workload = if coverage >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, coverage)
    };

    let analysis = AaLoadAnalysis::new(part);
    println!(
        "partition {part}: bottleneck dimension {}, contention factor C = {:.2}",
        analysis.bottleneck().dim,
        analysis.contention_factor()
    );
    println!("(Equation 2: C = M/8 on a torus whose longest dimension is M)\n");

    for strategy in [
        StrategyKind::ar(),
        StrategyKind::dr(),
        StrategyKind::tps(),
        StrategyKind::tps().with_pacer(Pacer::CreditWindow {
            credit: CreditConfig::default(),
        }),
    ] {
        let credit = strategy.pacer().credit_config().is_some();
        let report = run_aa(part, &workload, &strategy, &params, SimConfig::new(part))
            .expect("simulation completes");
        let utils: Vec<String> = part
            .dims()
            .map(|d| format!("{}={:.2}", d, report.stats.dim_utilization(&part, d)))
            .collect();
        println!(
            "{:22} {:6.1}% of peak   link utilization {}",
            format!(
                "{}{}",
                report.strategy.name(),
                if credit { "+credits" } else { "" }
            ),
            report.percent_of_peak,
            utils.join(" ")
        );
    }
    println!("\nAR leaves the bottleneck links underfed (tree saturation behind the long");
    println!("dimension); TPS separates line and plane traffic and restores the peak. The");
    println!("credit variant bounds intermediate-node memory for ~1% bandwidth overhead.");
}
