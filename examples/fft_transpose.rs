//! Domain example: the all-to-all at the heart of a distributed 3-D FFT.
//!
//! A pencil-decomposed 3-D FFT of an `N³` grid on `P` nodes transposes the
//! grid between FFT stages; each transpose is an all-to-all personalized
//! exchange of `N³·16/P²` bytes per node pair (complex doubles). This
//! example sizes that exchange for a few grids, picks the paper's best
//! strategy for the machine shape, and reports what fraction of the FFT's
//! run time the communication would claim.
//!
//! ```text
//! cargo run --release --example fft_transpose [shape] [grid_n]
//! ```

use bgl_alltoall::prelude::*;

/// Bytes each node sends to each other node in one transpose of an
/// `n³` complex-double grid over `p` nodes.
fn transpose_bytes_per_pair(n: u64, p: u64) -> u64 {
    let total = n * n * n * 16; // complex f64
    (total / (p * p)).max(1)
}

/// Crude per-node FFT compute estimate: `5·N³·log2(N³)/P` flops at an
/// optimistic 2.8 GFLOP/s per node (700 MHz dual FPU).
fn fft_compute_secs(n: u64, p: u64) -> f64 {
    let n3 = (n * n * n) as f64;
    5.0 * n3 * n3.log2() / p as f64 / 2.8e9
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args.first().map(String::as_str).unwrap_or("8x8x8");
    let part: Partition = shape.parse().expect("valid shape");
    let p = part.num_nodes() as u64;
    let params = MachineParams::bgl();

    let grids: Vec<u64> = match args.get(1).and_then(|s| s.parse().ok()) {
        Some(n) => vec![n],
        None => vec![128, 256, 512],
    };

    println!("3-D FFT transpose on {part} ({p} nodes)\n");
    println!(
        "{:>6} {:>12} {:>10} {:>9} {:>12} {:>12} {:>8}",
        "grid", "m/pair (B)", "strategy", "% peak", "comm (ms)", "compute (ms)", "comm %"
    );
    for n in grids {
        let m = transpose_bytes_per_pair(n, p);
        let strategy = StrategyKind::Auto;
        // Sample destinations on large machines to keep the demo quick.
        let coverage = (150_000.0 / p as f64).clamp(0.02, 1.0);
        let workload = if coverage >= 1.0 {
            AaWorkload::full(m)
        } else {
            AaWorkload::sampled(m, coverage)
        };
        let report = run_aa(part, &workload, &strategy, &params, SimConfig::new(part))
            .expect("simulation completes");
        // One FFT does two transposes; extrapolate sampled runs.
        let comm_ms = 2.0 * report.time_secs * 1e3 / report.workload.coverage;
        let comp_ms = fft_compute_secs(n, p) * 1e3;
        println!(
            "{:>6} {:>12} {:>10} {:>9.1} {:>12.2} {:>12.2} {:>7.1}%",
            format!("{n}^3"),
            m,
            report.strategy.name(),
            report.percent_of_peak,
            comm_ms,
            comp_ms,
            100.0 * comm_ms / (comm_ms + comp_ms)
        );
    }
    println!("\nSmall grids are latency/overhead bound (combining wins); large grids are");
    println!("bisection bound, where the direct/TPS schedules run near the Equation-2 peak.");
}
