//! Pattern zoo: the paper's closing hope — that its analysis carries over
//! to "more complex many-to-many communication patterns" — made runnable.
//!
//! For each pattern the generalized Equation-2 bottleneck (computed
//! numerically from minimal hop counts) is compared with the simulated
//! completion time.
//!
//! ```text
//! cargo run --release --example pattern_zoo [shape] [m_bytes]
//! ```

use bgl_alltoall::core::{run_pattern, Pattern};
use bgl_alltoall::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args.first().map(String::as_str).unwrap_or("4x4x4");
    let m: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(480);
    let part: Partition = shape.parse().expect("valid shape");
    let params = MachineParams::bgl();
    let p = part.num_nodes();

    let patterns: Vec<(String, Pattern)> = vec![
        ("all-to-all".into(), Pattern::AllToAll),
        ("shift(+1)".into(), Pattern::Shift { offset: 1 }),
        (
            format!("shift(+{})", p / 2),
            Pattern::Shift { offset: p / 2 },
        ),
        (
            format!("transpose({}x{})", p / 4, 4),
            Pattern::Transpose { rows: p / 4 },
        ),
        ("random(deg 8)".into(), Pattern::RandomPairs { degree: 8 }),
        (
            "plane-a2a(Z)".into(),
            Pattern::PlaneAllToAll { fixed: Dim::Z },
        ),
    ];

    println!("many-to-many patterns on {part}, {m} B per pair\n");
    println!(
        "{:>18} {:>8} {:>12} {:>12} {:>9}",
        "pattern", "pairs", "cycles", "peak (cyc)", "% peak"
    );
    for (name, pattern) in patterns {
        match run_pattern(part, &pattern, m, &params, SimConfig::new(part), 7) {
            Ok(r) => println!(
                "{:>18} {:>8} {:>12} {:>12.0} {:>8.1}%",
                name, r.pairs, r.cycles, r.peak_cycles, r.percent_of_peak
            ),
            Err(e) => println!("{name:>18}  ERROR {e}"),
        }
    }
    println!("\nPermutations (shift/transpose) have far lower aggregate load than the");
    println!("all-to-all, but skewed patterns concentrate on fewer links, so their");
    println!("percent-of-(their-own)-peak is lower — exactly the contention story the");
    println!("paper tells for the all-to-all, replayed on sparser traffic.");
}
