//! Quickstart: run one all-to-all on a simulated BG/L midplane and print
//! how close it gets to the Equation-2 peak.
//!
//! ```text
//! cargo run --release --example quickstart [shape] [m_bytes] [strategy]
//! cargo run --release --example quickstart 8x32x16 1872 tps
//! ```

use bgl_alltoall::prelude::*;

fn parse_strategy(name: &str) -> StrategyKind {
    match name.to_ascii_lowercase().as_str() {
        "ar" => StrategyKind::ar(),
        "dr" => StrategyKind::dr(),
        "mpi" => StrategyKind::mpi(),
        "throttle" => StrategyKind::throttled(1.0),
        "tps" => StrategyKind::tps(),
        "vmesh" => StrategyKind::vmesh(),
        "xyz" => StrategyKind::xyz(),
        "auto" => StrategyKind::Auto,
        other => panic!("unknown strategy {other:?} (ar|dr|mpi|throttle|tps|vmesh|xyz|auto)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args.first().map(String::as_str).unwrap_or("8x8x8");
    let m: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(912);
    let strategy = parse_strategy(args.get(2).map(String::as_str).unwrap_or("auto"));

    let part: Partition = shape.parse().expect("shape like 8x8x8 or 8x8x2M");
    let params = MachineParams::bgl();

    // Keep the demo snappy on big shapes by sampling destinations.
    let p = part.num_nodes();
    let coverage = (200_000.0 / p as f64).clamp(0.02, 1.0).min(1.0);
    let workload = if coverage >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, coverage)
    };

    println!(
        "partition {part} ({p} nodes, {}), {m} B per destination, strategy {}",
        if part.is_symmetric() {
            "symmetric"
        } else {
            "asymmetric"
        },
        strategy.name(),
    );
    let report = run_aa(part, &workload, &strategy, &params, SimConfig::new(part))
        .expect("simulation completes");
    println!("  resolved strategy : {}", report.strategy.name());
    println!(
        "  completion        : {} cycles = {:.3} ms",
        report.cycles,
        report.time_secs * 1e3
    );
    println!("  percent of peak   : {:.1} %", report.percent_of_peak);
    println!(
        "  per-node bandwidth: {:.1} MB/s (peak {:.1})",
        report.per_node_bandwidth / 1e6,
        bgl_alltoall::model::peak::peak_per_node_bandwidth(&part, &params) / 1e6
    );
    println!(
        "  delivered         : {} packets, {} payload bytes",
        report.stats.packets_delivered, report.stats.payload_bytes_delivered
    );
}
