//! Strategy planner for short messages: sweeps message sizes on a chosen
//! partition, measures all applicable strategies, and reports the winner at
//! each size together with the analytic crossover (Equations 3 vs 4).
//!
//! This is the decision an MPI library has to bake into `MPI_Alltoall`
//! dispatch tables; the paper's answer is "combining below ~32–64 B,
//! direct/TPS above".
//!
//! ```text
//! cargo run --release --example short_message_planner [shape]
//! ```

use bgl_alltoall::model::vmesh as vmesh_model;
use bgl_alltoall::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args.first().map(String::as_str).unwrap_or("8x8x8");
    let part: Partition = shape.parse().expect("valid shape");
    let params = MachineParams::bgl();
    let p = part.num_nodes();

    let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
    println!(
        "partition {part}: virtual mesh {}x{} ({})",
        vm.pvx(),
        vm.pvy(),
        if part.is_symmetric() {
            "balanced blocks"
        } else {
            "plane-aligned"
        }
    );
    if let Some(x) = vmesh_model::crossover_exact(&vm, &params) {
        println!("model crossover (Eq 3 = Eq 4): m ≈ {x:.0} B\n");
    }

    let direct_pick = if part.is_symmetric() {
        StrategyKind::ar()
    } else {
        StrategyKind::tps()
    };
    let vmesh = StrategyKind::vmesh();
    let coverage = (150_000.0 / p as f64).clamp(0.05, 1.0);

    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>8}",
        "m (B)", "direct (ms)", "vmesh (ms)", "winner", "auto"
    );
    for m in [1u64, 4, 8, 16, 32, 64, 128, 256] {
        let workload = if coverage >= 1.0 {
            AaWorkload::full(m)
        } else {
            AaWorkload::sampled(m, coverage)
        };
        let run = |s: &StrategyKind| {
            run_aa(part, &workload, s, &params, SimConfig::new(part))
                .map(|r| r.time_secs * 1e3 / r.workload.coverage)
                .expect("simulation completes")
        };
        let td = run(&direct_pick);
        let tv = run(&vmesh);
        let auto = auto_select(&part, m, &params);
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>10} {:>8}",
            m,
            td,
            tv,
            if tv < td { "vmesh" } else { direct_pick.name() },
            auto.name()
        );
    }
}
