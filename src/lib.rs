//! # bgl-alltoall
//!
//! A from-scratch reproduction of *Performance Analysis and Optimization of
//! All-to-all Communication on the Blue Gene/L Supercomputer* (Kumar &
//! Heidelberger): a cycle-level BG/L torus network simulator, the paper's
//! all-to-all strategies (AR, DR, throttled, Two Phase Schedule, Virtual
//! Mesh), its analytical models (Equations 1–4), and a harness regenerating
//! every table and figure.
//!
//! This crate is the facade: it re-exports the workspace members so
//! examples and downstream users need a single dependency.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`torus`] | `bgl-torus` | partition geometry, routing math, load analysis |
//! | [`model`] | `bgl-model` | Equations 1–4, machine parameters |
//! | [`sim`] | `bgl-sim` | the cycle-level network simulator |
//! | [`core`] | `bgl-core` | the all-to-all strategies and runner |
//! | [`harness`] | `bgl-harness` | per-table/figure experiments |
//!
//! ## Quickstart
//!
//! ```
//! use bgl_alltoall::prelude::*;
//!
//! let part: Partition = "8x8x8".parse().unwrap();
//! let report = run_aa(
//!     part,
//!     &AaWorkload::sampled(912, 0.25),
//!     &StrategyKind::Auto,
//!     &MachineParams::bgl(),
//!     SimConfig::new(part),
//! )
//! .unwrap();
//! println!("{}: {:.1}% of peak", report.strategy.name(), report.percent_of_peak);
//! ```

pub use bgl_core as core;
pub use bgl_harness as harness;
pub use bgl_model as model;
pub use bgl_sim as sim;
pub use bgl_torus as torus;

/// The names most programs need.
pub mod prelude {
    pub use bgl_core::{
        auto_select, run_aa, AaReport, AaRun, AaWorkload, CreditConfig, Pacer, StrategyKind,
    };
    pub use bgl_model::MachineParams;
    pub use bgl_sim::{Engine, NodeApi, NodeProgram, SendSpec, SimConfig};
    pub use bgl_torus::{AaLoadAnalysis, Coord, Dim, Partition, VirtualMesh, VmeshLayout};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let part: Partition = "4x4".parse().unwrap();
        let analysis = AaLoadAnalysis::new(part);
        assert!(analysis.bottleneck().load_factor > 0.0);
        let strategy = auto_select(&part, 4096, &MachineParams::bgl());
        assert_eq!(strategy, StrategyKind::ar());
    }
}
