//! Property-based tests over the core data structures and the simulator's
//! conservation/termination invariants.

use bgl_alltoall::core::{destination_schedule, packetize, total_chunks};
use bgl_alltoall::prelude::*;
use bgl_alltoall::sim::{Engine, NodeProgram, ScriptedProgram, SendSpec};
use bgl_alltoall::torus::{AaLoadAnalysis, HopPlan, TieBreak};
use proptest::prelude::*;

/// Arbitrary small partitions: sizes 1..=6 per dimension, random wrap
/// flags, at least 2 nodes.
fn small_partition() -> impl Strategy<Value = Partition> {
    (1u16..=6, 1u16..=6, 1u16..=6, any::<[bool; 3]>())
        .prop_filter("need two nodes", |(x, y, z, _)| {
            (*x as u32) * (*y as u32) * (*z as u32) >= 2
        })
        .prop_map(|(x, y, z, wrap)| Partition::new(&[x, y, z], &wrap))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HopPlan always produces the minimal distance, and walking it in
    /// dimension order lands exactly on the destination.
    #[test]
    fn hop_plans_are_minimal_and_complete(part in small_partition(), a in 0u32..1000, b in 0u32..1000) {
        let p = part.num_nodes();
        let src = part.coord_of(a % p);
        let dst = part.coord_of(b % p);
        let mut plan = HopPlan::new(&part, src, dst, TieBreak::SrcParity);
        prop_assert_eq!(plan.total_hops(), part.hops(src, dst));
        let mut here = src;
        let mut steps = 0;
        while let Some(dir) = plan.dimension_order_next() {
            here = part.neighbor(here, dir).expect("minimal step stays on partition");
            plan.advance(dir.dim);
            steps += 1;
            prop_assert!(steps <= 64, "plan must terminate");
        }
        prop_assert_eq!(here, dst);
    }

    /// Rank/coordinate mapping is a bijection.
    #[test]
    fn rank_coord_bijection(part in small_partition()) {
        let mut seen = std::collections::HashSet::new();
        for r in 0..part.num_nodes() {
            let c = part.coord_of(r);
            prop_assert!(part.contains(c));
            prop_assert_eq!(part.rank_of(c), r);
            prop_assert!(seen.insert(c));
        }
    }

    /// The load analysis is positive on the bottleneck and symmetric
    /// partitions have equal per-dimension loads.
    #[test]
    fn load_analysis_sanity(part in small_partition()) {
        let a = AaLoadAnalysis::new(part);
        prop_assert!(a.bottleneck().load_factor > 0.0);
        for d in part.dims() {
            if part.size(d) <= 1 {
                prop_assert_eq!(a.dims[d.index()].load_factor, 0.0);
            }
        }
        if part.is_symmetric() {
            let active: Vec<f64> = part
                .dims()
                .filter(|&d| part.size(d) > 1)
                .map(|d| a.dims[d.index()].load_factor)
                .collect();
            for w in active.windows(2) {
                prop_assert!((w[0] - w[1]).abs() < 1e-9);
            }
        }
    }

    /// Packetization conserves payload exactly and never exceeds the wire
    /// format's limits.
    #[test]
    fn packetize_invariants(m in 0u64..100_000, header in prop::sample::select(vec![8u32, 48])) {
        let params = MachineParams::bgl();
        let shapes = packetize(m, header, 32, &params);
        prop_assert_eq!(shapes.iter().map(|s| s.payload as u64).sum::<u64>(), m);
        for s in &shapes {
            prop_assert!(s.chunks >= 1 && s.chunks <= 8);
        }
        // Wire bytes cover payload + header.
        prop_assert!(total_chunks(&shapes) * 32 >= m + header as u64);
    }

    /// Destination schedules are self-free, duplicate-free and within
    /// range, at any coverage.
    #[test]
    fn schedule_invariants(p in 2u32..600, rank in 0u32..600, dests in 1u32..600, seed in any::<u64>()) {
        let rank = rank % p;
        let s = destination_schedule(rank, p, dests, seed);
        prop_assert!(!s.is_empty());
        prop_assert!((s.len() as u32) < p);
        let set: std::collections::HashSet<u32> = s.iter().copied().collect();
        prop_assert_eq!(set.len(), s.len(), "duplicates");
        prop_assert!(!set.contains(&rank), "self-send");
        prop_assert!(s.iter().all(|&d| d < p));
    }

    /// The virtual mesh factorization always tiles the machine exactly.
    #[test]
    fn vmesh_tiles_partition(part in small_partition()) {
        let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
        prop_assert_eq!(vm.pvx() * vm.pvy(), part.num_nodes());
        let mut seen = std::collections::HashSet::new();
        for row in 0..vm.pvy() {
            for pos in 0..vm.pvx() {
                let c = vm.node_at(row, pos);
                prop_assert!(part.contains(c));
                prop_assert!(seen.insert(c));
                prop_assert_eq!(vm.row_of(c), row);
                prop_assert_eq!(vm.pos_in_row(c), pos);
            }
        }
    }

    /// Simulator conservation: random sparse traffic always drains, every
    /// packet is delivered exactly once, and the run is deterministic.
    #[test]
    fn random_traffic_conserves_and_terminates(
        part in small_partition(),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>(), 1u8..=8), 1..40),
        seed in any::<u64>(),
    ) {
        let p = part.num_nodes();
        let mut cfg = SimConfig::new(part);
        cfg.seed = seed;
        let mut sends: Vec<Vec<SendSpec>> = vec![Vec::new(); p as usize];
        let mut expected: Vec<u64> = vec![0; p as usize];
        let mut total = 0u64;
        for (a, b, chunks) in pairs {
            let src = a % p;
            let dst = b % p;
            if src == dst {
                continue;
            }
            sends[src as usize].push(SendSpec::adaptive(dst, chunks, chunks as u32 * 30));
            expected[dst as usize] += 1;
            total += 1;
        }
        let build = || -> Vec<Box<dyn NodeProgram>> {
            (0..p as usize)
                .map(|i| {
                    Box::new(ScriptedProgram::new(sends[i].clone(), expected[i]))
                        as Box<dyn NodeProgram>
                })
                .collect()
        };
        let s1 = Engine::new(cfg.clone(), build()).run().expect("drains");
        prop_assert_eq!(s1.packets_injected, total);
        prop_assert_eq!(s1.packets_delivered, total);
        let s2 = Engine::new(cfg, build()).run().expect("drains");
        prop_assert_eq!(s1, s2);
    }

    /// Percent-of-peak from a real run never exceeds the Equation-2 bound
    /// by more than numerical noise, for random small AAs.
    #[test]
    fn equation2_is_an_upper_bound(
        dims in (2u16..=4, 2u16..=4, 1u16..=4),
        m in prop::sample::select(vec![32u64, 240, 480]),
    ) {
        let part = Partition::torus(dims.0, dims.1, dims.2);
        if part.num_nodes() < 2 {
            return Ok(());
        }
        let r = run_aa(
            part,
            &AaWorkload::full(m),
            &StrategyKind::ar(),
            &MachineParams::bgl(),
            SimConfig::new(part),
        ).expect("completes");
        prop_assert!(r.percent_of_peak <= 103.0, "{}", r.percent_of_peak);
    }
}
