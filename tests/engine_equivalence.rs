//! Differential fuzzer for the engine's observational equivalences.
//!
//! Random (partition, strategy, message size, coverage, trace interval)
//! configurations drawn across the real strategy stack, asserting three
//! independences the simulator promises:
//!
//! 1. **Engine mode**: the active-set and event-driven engines produce
//!    byte-identical `NetStats` — cycle counts, latency histograms,
//!    per-dimension link counters — to the reference full-scan path
//!    (`SimConfig::engine`, see `EngineMode`).
//! 2. **Tracing**: enabling `SimConfig::trace` changes nothing in
//!    `NetStats`, in any engine mode, and the recorded per-dimension
//!    link-busy deltas sum exactly to the run's `link_busy_chunks`.
//! 3. **Runner parallelism**: `Runner` results are byte-identical
//!    between `--jobs 1` and a many-thread pool.
//!
//! This replaces an earlier hand-picked 8-configuration grid: the fuzzer
//! spans the same symmetric/asymmetric × full/sampled × direct/indirect
//! space but resamples it freshly each run (seeds are deterministic per
//! test; failing cases persist to `proptest-regressions/` for replay).

use bgl_alltoall::harness::runner::{RunPoint, Runner, Scale};
use bgl_alltoall::prelude::*;
use bgl_sim::{EngineMode, TraceConfig};
use proptest::prelude::*;
use std::num::NonZeroUsize;

/// Shard counts drawn by the fuzzer: the sequential baseline, even splits,
/// and a prime that never divides the node counts (uneven slabs).
const SHARD_POOL: [usize; 4] = [1, 2, 4, 7];

/// The strategy pool: every class once — direct adaptive/deterministic,
/// throttled, and the three software-forwarding schemes.
fn strategy_pool() -> [StrategyKind; 6] {
    [
        StrategyKind::ar(),
        StrategyKind::dr(),
        StrategyKind::throttled(1.25),
        StrategyKind::tps(),
        StrategyKind::vmesh(),
        StrategyKind::xyz(),
    ]
}

/// Shapes spanning 1D/2D/3D, symmetric and asymmetric, torus and mesh.
const SHAPES: [&str; 6] = ["8", "4x4", "4x4x4", "8x4x4", "4x4x8", "8x8x4M"];

/// One drawn configuration, with coverage scaled down on the larger
/// partitions so a fuzz case stays sub-second.
fn config(
    shape_i: usize,
    strat_i: usize,
    m_i: usize,
    cov_i: usize,
) -> (Partition, StrategyKind, u64, f64) {
    let part: Partition = SHAPES[shape_i % SHAPES.len()].parse().unwrap();
    let strategy = strategy_pool()[strat_i % 6].clone();
    let m = [1u64, 64, 240, 912][m_i % 4];
    let cov = if part.num_nodes() >= 256 {
        [0.125, 0.25][cov_i % 2]
    } else {
        [1.0, 0.5][cov_i % 2]
    };
    (part, strategy, m, cov)
}

fn workload(m: u64, coverage: f64) -> AaWorkload {
    if coverage >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, coverage)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Equivalences 1 and 2: every engine mode vs the full-scan
    /// reference, traced and untraced, on a random configuration with a
    /// random trace interval — and, for every comparison run, a random
    /// shard count (the reference always runs unsharded, so every drawn
    /// case also checks sharding changes nothing).
    #[test]
    fn engine_modes_and_tracing_agree(
        shape_i in 0usize..6,
        strat_i in 0usize..6,
        m_i in 0usize..4,
        cov_i in 0usize..2,
        interval in 100u64..2000,
        shard_i in 0usize..4,
    ) {
        let (part, strategy, m, cov) = config(shape_i, strat_i, m_i, cov_i);
        let shards = NonZeroUsize::new(SHARD_POOL[shard_i]).unwrap();
        let workload = workload(m, cov);
        let params = MachineParams::bgl();
        let label = format!(
            "{part} {} m={m} cov={cov} every={interval} shards={shards}",
            strategy.name()
        );
        let mut cfg = SimConfig::new(part);
        cfg.engine = EngineMode::FullScan;
        let reference =
            run_aa(part, &workload, &strategy, &params, cfg).expect("full-scan run completes");
        for mode in EngineMode::ALL {
            if mode == EngineMode::FullScan && shards.get() == 1 {
                continue; // identical to the reference run by construction
            }
            let mut cfg = SimConfig::new(part);
            cfg.engine = mode;
            cfg.shards = shards;
            let got = run_aa(part, &workload, &strategy, &params, cfg)
                .expect("optimized run completes");
            prop_assert_eq!(got.cycles, reference.cycles, "{} {}", &label, mode);
            prop_assert_eq!(&got.stats, &reference.stats, "{} {}", &label, mode);
        }

        // Tracing on, all three engine modes: NetStats must stay
        // identical and the trace's busy deltas must telescope to the
        // run totals.
        for mode in EngineMode::ALL {
            let mut cfg = SimConfig::new(part);
            cfg.engine = mode;
            cfg.shards = shards;
            cfg.trace = Some(TraceConfig::every(interval));
            let traced =
                run_aa(part, &workload, &strategy, &params, cfg).expect("traced run completes");
            prop_assert_eq!(
                &traced.stats, &reference.stats,
                "{} traced {}", &label, mode
            );
            let trace = traced.trace.expect("trace recorded");
            prop_assert_eq!(
                trace.link_busy_totals(),
                traced.stats.link_busy_chunks,
                "{} busy deltas must sum to totals ({})", &label, mode
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Equivalence 3: a random point set run through a serial and a
    /// many-thread `Runner` yields byte-identical reports per key.
    #[test]
    fn runner_parallelism_is_invisible(
        picks in proptest::arbitrary::any::<[u8; 3]>(),
        jobs in 2usize..5,
    ) {
        let serial = Runner::new(Scale::Quick).with_jobs(1);
        let parallel = Runner::new(Scale::Quick).with_jobs(jobs);
        let points: Vec<RunPoint> = picks
            .iter()
            .map(|&p| {
                let (part, strategy, m, cov) = config(
                    p as usize,
                    (p / 6) as usize,
                    (p / 36) as usize,
                    (p / 144) as usize,
                );
                RunPoint::new(part, strategy, m, cov)
            })
            .collect();
        serial.run_points(&points);
        parallel.run_points(&points);
        for point in &points {
            let a = serial.report(point).expect("serial run completes");
            let b = parallel.report(point).expect("parallel run completes");
            prop_assert_eq!(a.cycles, b.cycles, "{:?}", &point.key);
            prop_assert_eq!(&a.stats, &b.stats, "{:?}", &point.key);
        }
    }
}
