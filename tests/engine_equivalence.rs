//! Determinism pin for the active-set engine across the real strategy
//! stack: on a grid of (partition, strategy, m) configurations spanning
//! symmetric/asymmetric shapes and full/sampled coverage, the active-set
//! engine produces byte-identical `NetStats` — cycle counts, latency
//! histograms, per-dimension link counters — to the reference full-scan
//! path (`SimConfig::full_scan_engine = true`). The same grid also pins
//! that time-series tracing is purely observational: enabling
//! `SimConfig::trace` changes nothing in `NetStats`, in either engine
//! mode, and the recorded per-dimension link-busy deltas sum exactly to
//! the run's `link_busy_chunks` totals.

use bgl_alltoall::prelude::*;
use bgl_sim::TraceConfig;

fn assert_modes_match(shape: &str, strategy: StrategyKind, m: u64, coverage: f64) {
    let part: Partition = shape.parse().unwrap();
    let workload = if coverage >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, coverage)
    };
    let params = MachineParams::bgl();
    let label = format!("{shape} {} m={m} cov={coverage}", strategy.name());
    let active = run_aa(part, &workload, &strategy, &params, SimConfig::new(part))
        .expect("active-set run completes");
    let mut cfg = SimConfig::new(part);
    cfg.full_scan_engine = true;
    let reference =
        run_aa(part, &workload, &strategy, &params, cfg).expect("full-scan run completes");
    assert_eq!(active.cycles, reference.cycles, "{label}");
    assert_eq!(active.stats, reference.stats, "{label}");

    // Tracing on, both engine modes: NetStats must stay byte-identical,
    // and the trace's busy deltas must telescope to the run totals.
    for full_scan in [false, true] {
        let mut cfg = SimConfig::new(part);
        cfg.full_scan_engine = full_scan;
        cfg.trace = Some(TraceConfig::every(500));
        let traced =
            run_aa(part, &workload, &strategy, &params, cfg).expect("traced run completes");
        assert_eq!(
            traced.stats, active.stats,
            "{label} traced full_scan={full_scan}"
        );
        let trace = traced.trace.expect("trace recorded");
        assert_eq!(
            trace.link_busy_totals(),
            traced.stats.link_busy_chunks,
            "{label} busy deltas must sum to totals (full_scan={full_scan})"
        );
    }
}

/// Direct strategies, symmetric and asymmetric, full coverage.
#[test]
fn direct_strategies_full_coverage() {
    assert_modes_match("4x4x4", StrategyKind::AdaptiveRandomized, 240, 1.0);
    assert_modes_match("8x4x4", StrategyKind::AdaptiveRandomized, 912, 1.0);
    assert_modes_match("4x4x4", StrategyKind::DeterministicRouted, 240, 1.0);
}

/// Indirect (forwarding) strategies: software forwarding exercises
/// reactive sends, injection classes and the CPU re-activation paths.
#[test]
fn indirect_strategies_full_coverage() {
    assert_modes_match(
        "8x4x4",
        StrategyKind::TwoPhaseSchedule {
            linear: None,
            credit: None,
        },
        240,
        1.0,
    );
    assert_modes_match(
        "4x4",
        StrategyKind::VirtualMesh {
            layout: VmeshLayout::Auto,
        },
        240,
        1.0,
    );
}

/// Sampled coverage on a larger partition — the sparse regime where the
/// active sets actually skip work — for both a direct and an indirect
/// strategy, plus a 1-byte (latency-bound) point.
#[test]
fn sampled_coverage_sparse_regime() {
    assert_modes_match("8x8x8", StrategyKind::AdaptiveRandomized, 912, 0.125);
    assert_modes_match(
        "8x8x8",
        StrategyKind::TwoPhaseSchedule {
            linear: None,
            credit: None,
        },
        64,
        0.125,
    );
    assert_modes_match("8x8x4", StrategyKind::AdaptiveRandomized, 1, 0.25);
}
