//! Differential fuzzer for the engine's observational equivalences.
//!
//! Random (partition, strategy, message size, coverage, trace interval)
//! configurations drawn across the real strategy stack, asserting three
//! independences the simulator promises:
//!
//! 1. **Engine mode**: the active-set and event-driven engines produce
//!    byte-identical `NetStats` — cycle counts, latency histograms,
//!    per-dimension link counters — to the reference full-scan path
//!    (`SimConfig::engine`, see `EngineMode`).
//! 2. **Tracing**: enabling `SimConfig::trace` changes nothing in
//!    `NetStats`, in any engine mode, and the recorded per-dimension
//!    link-busy deltas sum exactly to the run's `link_busy_chunks`.
//! 3. **Runner parallelism**: `Runner` results are byte-identical
//!    between `--jobs 1` and a many-thread pool.
//!
//! This replaces an earlier hand-picked 8-configuration grid: the fuzzer
//! spans the same symmetric/asymmetric × full/sampled × direct/indirect
//! space but resamples it freshly each run (seeds are deterministic per
//! test; failing cases persist to `proptest-regressions/` for replay).

use bgl_alltoall::harness::runner::{RunPoint, Runner, Scale};
use bgl_alltoall::prelude::*;
use bgl_sim::{EngineMode, FaultPlan, LinkFault, TraceConfig};
use proptest::prelude::*;
use std::num::NonZeroUsize;

/// Shard counts drawn by the fuzzer: the sequential baseline, even splits,
/// and a prime that never divides the node counts (uneven slabs).
const SHARD_POOL: [usize; 4] = [1, 2, 4, 7];

/// The strategy pool: every class once — direct adaptive/deterministic,
/// throttled, and the three software-forwarding schemes.
fn strategy_pool() -> [StrategyKind; 6] {
    [
        StrategyKind::ar(),
        StrategyKind::dr(),
        StrategyKind::throttled(1.25),
        StrategyKind::tps(),
        StrategyKind::vmesh(),
        StrategyKind::xyz(),
    ]
}

/// Shapes spanning 1D/2D/3D, symmetric and asymmetric, torus and mesh.
const SHAPES: [&str; 6] = ["8x1x1", "4x4", "4x4x4", "8x4x4", "4x4x8", "8x8x4M"];

/// One drawn configuration, with coverage scaled down on the larger
/// partitions so a fuzz case stays sub-second.
fn config(
    shape_i: usize,
    strat_i: usize,
    m_i: usize,
    cov_i: usize,
) -> (Partition, StrategyKind, u64, f64) {
    let part: Partition = SHAPES[shape_i % SHAPES.len()].parse().unwrap();
    let strategy = strategy_pool()[strat_i % 6].clone();
    let m = [1u64, 64, 240, 912][m_i % 4];
    let cov = if part.num_nodes() >= 256 {
        [0.125, 0.25][cov_i % 2]
    } else {
        [1.0, 0.5][cov_i % 2]
    };
    (part, strategy, m, cov)
}

fn workload(m: u64, coverage: f64) -> AaWorkload {
    if coverage >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, coverage)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Equivalences 1 and 2: every engine mode vs the full-scan
    /// reference, traced and untraced, on a random configuration with a
    /// random trace interval — and, for every comparison run, a random
    /// shard count (the reference always runs unsharded, so every drawn
    /// case also checks sharding changes nothing).
    #[test]
    fn engine_modes_and_tracing_agree(
        shape_i in 0usize..6,
        strat_i in 0usize..6,
        m_i in 0usize..4,
        cov_i in 0usize..2,
        interval in 100u64..2000,
        shard_i in 0usize..4,
    ) {
        let (part, strategy, m, cov) = config(shape_i, strat_i, m_i, cov_i);
        let shards = NonZeroUsize::new(SHARD_POOL[shard_i]).unwrap();
        let workload = workload(m, cov);
        let params = MachineParams::bgl();
        let label = format!(
            "{part} {} m={m} cov={cov} every={interval} shards={shards}",
            strategy.name()
        );
        let mut cfg = SimConfig::new(part);
        cfg.engine = EngineMode::FullScan;
        let reference =
            run_aa(part, &workload, &strategy, &params, cfg).expect("full-scan run completes");
        for mode in EngineMode::ALL {
            if mode == EngineMode::FullScan && shards.get() == 1 {
                continue; // identical to the reference run by construction
            }
            let mut cfg = SimConfig::new(part);
            cfg.engine = mode;
            cfg.shards = shards;
            let got = run_aa(part, &workload, &strategy, &params, cfg)
                .expect("optimized run completes");
            prop_assert_eq!(got.cycles, reference.cycles, "{} {}", &label, mode);
            prop_assert_eq!(&got.stats, &reference.stats, "{} {}", &label, mode);
        }

        // Tracing on, all three engine modes: NetStats must stay
        // identical and the trace's busy deltas must telescope to the
        // run totals.
        for mode in EngineMode::ALL {
            let mut cfg = SimConfig::new(part);
            cfg.engine = mode;
            cfg.shards = shards;
            cfg.trace = Some(TraceConfig::every(interval));
            let traced =
                run_aa(part, &workload, &strategy, &params, cfg).expect("traced run completes");
            prop_assert_eq!(
                &traced.stats, &reference.stats,
                "{} traced {}", &label, mode
            );
            let trace = traced.trace.expect("trace recorded");
            prop_assert_eq!(
                trace.link_busy_totals(),
                traced.stats.link_busy_chunks,
                "{} busy deltas must sum to totals ({})", &label, mode
            );
        }
    }
}

/// Draw up to `picks.len()` distinct, topologically present directed
/// links from the partition (mesh edges have no wrap link and are
/// skipped). May legitimately come up empty for unlucky draws.
fn draw_dead_links(part: &Partition, picks: &[u32]) -> Vec<LinkFault> {
    let n = part.num_nodes() as usize * 6;
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for &p in picks {
        let idx = p as usize % n;
        let node = (idx / 6) as u32;
        let dir = bgl_torus::Direction::from_index(idx % 6);
        if seen[idx] || part.neighbor(part.coord_of(node), dir).is_none() {
            continue;
        }
        seen[idx] = true;
        out.push(LinkFault::dead(node, dir));
    }
    out
}

/// Case count for the chaos suite: 8 in a normal run, raised via
/// `PROPTEST_CASES` by the weekly chaos CI job (an explicit
/// `with_cases` would silently override the environment variable).
fn chaos_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Fault dimension of equivalence 1: a random set of statically dead
    /// links must leave the run's entire `Result` — completed `NetStats`
    /// byte-for-byte, or the exact same `SimError` — invariant across
    /// all three engine modes and across shard counts. Also pins the
    /// no-op guarantee: a fault scheduled far past completion runs the
    /// degraded-mode arbitration code yet stays byte-identical to the
    /// healthy run.
    #[test]
    fn fault_plans_are_engine_and_shard_invariant(
        shape_i in 0usize..6,
        strat_i in 0usize..6,
        m_i in 0usize..2,
        cov_i in 0usize..2,
        picks in proptest::collection::vec(proptest::arbitrary::any::<u32>(), 1..4),
        shard_i in 0usize..4,
    ) {
        let (part, strategy, _, cov) = config(shape_i, strat_i, 0, cov_i);
        let m = [64u64, 240][m_i];
        let shards = NonZeroUsize::new(SHARD_POOL[shard_i]).unwrap();
        let workload = workload(m, cov);
        let params = MachineParams::bgl();
        let plan = FaultPlan {
            links: draw_dead_links(&part, &picks),
            nodes: vec![],
        };
        let label = format!(
            "{part} {} m={m} cov={cov} shards={shards} faults={:?}",
            strategy.name(),
            plan.links
        );

        // An unreachable pair parks its packets until the watchdog; a
        // short (but progress-based, so never spuriously firing) fuse
        // keeps those fuzz cases fast. Identical in every compared run.
        let fuse = 10_000;
        let base = |mode: EngineMode, shards: NonZeroUsize, fault: FaultPlan| {
            let mut cfg = SimConfig::new(part);
            cfg.engine = mode;
            cfg.shards = shards;
            cfg.watchdog_cycles = fuse;
            cfg.fault = fault;
            cfg
        };

        let one = NonZeroUsize::new(1).unwrap();
        let reference = run_aa(
            part, &workload, &strategy, &params,
            base(EngineMode::FullScan, one, plan.clone()),
        );
        for mode in EngineMode::ALL {
            if mode == EngineMode::FullScan && shards.get() == 1 {
                continue;
            }
            let got = run_aa(
                part, &workload, &strategy, &params,
                base(mode, shards, plan.clone()),
            );
            match (&reference, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.cycles, b.cycles, "{} {}", &label, mode);
                    prop_assert_eq!(&a.stats, &b.stats, "{} {}", &label, mode);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{} {}", &label, mode),
                (a, b) => prop_assert!(
                    false,
                    "{} {}: reference {:?} vs {:?}",
                    &label, mode, a.is_ok(), b.is_ok()
                ),
            }
        }

        // No-op plan: same links, dead only at a cycle no run reaches.
        let noop = FaultPlan {
            links: plan.links.iter().map(|l| LinkFault {
                fail_at: 1 << 40,
                recover_at: None,
                ..*l
            }).collect(),
            nodes: vec![],
        };
        let healthy = run_aa(
            part, &workload, &strategy, &params,
            base(EngineMode::FullScan, one, FaultPlan::default()),
        ).expect("healthy run completes");
        let nooped = run_aa(
            part, &workload, &strategy, &params,
            base(EngineMode::FullScan, one, noop),
        ).expect("noop-fault run completes");
        prop_assert_eq!(healthy.cycles, nooped.cycles, "{} noop", &label);
        prop_assert_eq!(&healthy.stats, &nooped.stats, "{} noop", &label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Equivalence 3: a random point set run through a serial and a
    /// many-thread `Runner` yields byte-identical reports per key.
    #[test]
    fn runner_parallelism_is_invisible(
        picks in proptest::arbitrary::any::<[u8; 3]>(),
        jobs in 2usize..5,
    ) {
        let serial = Runner::new(Scale::Quick).with_jobs(1);
        let parallel = Runner::new(Scale::Quick).with_jobs(jobs);
        let points: Vec<RunPoint> = picks
            .iter()
            .map(|&p| {
                let (part, strategy, m, cov) = config(
                    p as usize,
                    (p / 6) as usize,
                    (p / 36) as usize,
                    (p / 144) as usize,
                );
                RunPoint::new(part, strategy, m, cov)
            })
            .collect();
        serial.run_points(&points);
        parallel.run_points(&points);
        for point in &points {
            let a = serial.report(point).expect("serial run completes");
            let b = parallel.report(point).expect("parallel run completes");
            prop_assert_eq!(a.cycles, b.cycles, "{:?}", &point.key);
            prop_assert_eq!(&a.stats, &b.stats, "{:?}", &point.key);
        }
    }
}
