//! Pacer liveness: flow control may slow a run down, but it must never
//! deadlock one.
//!
//! Random (shape, strategy, pacer) draws across every strategy class and
//! the whole valid pacer space — unpaced, rate windows down to a quarter
//! of the bisection peak, credit windows down to one packet in flight per
//! intermediate — run a full-coverage exchange on small tori and assert
//! the simulation completes (no `SimError::Stalled`, no cycle-limit
//! blowup) with all payload delivered. This is the machine-checked form
//! of the refactor's core promise: the engine-enforced `FlowSpec` paths
//! (rate gating in the injection pull, credit reserve/ack in the
//! forwarding strategies) cannot wedge the network for any parameter
//! choice that passes `FlowSpec::validate`.
//!
//! Failing draws persist to `proptest-regressions/pacer_liveness.txt`
//! for replay; commit new `cc` lines alongside the fix.

use bgl_alltoall::prelude::*;
use proptest::prelude::*;

/// Every strategy class once; the forwarding schemes (TPS, VMesh, XYZ)
/// exercise the credit reserve/ack path, the direct schemes the rate
/// window alone.
fn strategy_pool() -> [StrategyKind; 6] {
    [
        StrategyKind::mpi(),
        StrategyKind::ar(),
        StrategyKind::dr(),
        StrategyKind::tps(),
        StrategyKind::vmesh(),
        StrategyKind::xyz(),
    ]
}

/// Small 2D/3D tori and meshes: large enough for multi-hop forwarding
/// (VMesh rows/columns, TPS linear phases), small enough that a
/// full-coverage draw stays sub-second.
const SHAPES: [&str; 5] = ["4x4", "4x4x2", "4x4x4", "8x4x2", "4x2x2M"];

/// Decode a pacer from three raw draws. The space covers unpaced, rate
/// factors in [0.25, 2.0], and every valid credit (window, quantum) pair
/// with windows from 1 (full serialization per intermediate) to 16.
fn pacer(kind: u8, num: u8, den: u8) -> Pacer {
    match kind % 3 {
        0 => Pacer::Unpaced,
        1 => Pacer::rate(0.25 + (num % 8) as f64 * 0.25),
        _ => {
            let window = 1 + (num % 16) as u32;
            let every = 1 + (den as u32) % window;
            Pacer::credit(window, every)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid pacer on any strategy completes a full-coverage
    /// exchange and delivers every payload byte.
    #[test]
    fn paced_exchanges_never_stall(
        shape_i in 0usize..SHAPES.len(),
        strat_i in 0usize..6,
        kind in any::<u8>(),
        num in any::<u8>(),
        den in any::<u8>(),
        m_i in 0usize..3,
    ) {
        let part: Partition = SHAPES[shape_i].parse().unwrap();
        let strategy = strategy_pool()[strat_i].clone().with_pacer(pacer(kind, num, den));
        let m = [8u64, 64, 240][m_i];
        let report = AaRun::builder(part, AaWorkload::full(m))
            .strategy(strategy.clone())
            .run();
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "{part:?} {} m={m}: {e}",
                    strategy.name()
                )))
            }
        };
        // Liveness plus delivery: the exchange finished and every node's
        // payload reached its destinations (credit acks ride alongside,
        // so delivered bytes are at least the application total).
        let p = part.num_nodes() as u64;
        prop_assert!(report.cycles > 0);
        prop_assert!(
            report.stats.payload_bytes_delivered >= p * (p - 1) * m,
            "short delivery: {} < {}",
            report.stats.payload_bytes_delivered,
            p * (p - 1) * m
        );
    }
}
