//! Cross-crate integration tests: full strategy runs through the public
//! facade, checking the paper's qualitative claims at test-sized scale.

use bgl_alltoall::prelude::*;
use bgl_alltoall::sim::RoutingMode;

fn report(shape: &str, strategy: &StrategyKind, m: u64) -> AaReport {
    let part: Partition = shape.parse().unwrap();
    run_aa(
        part,
        &AaWorkload::full(m),
        strategy,
        &MachineParams::bgl(),
        SimConfig::new(part),
    )
    .expect("simulation completes")
}

/// Every strategy moves exactly the right number of application bytes on a
/// small torus.
#[test]
fn all_strategies_conserve_payload() {
    let shape = "4x4x2";
    let p = 32u64;
    let m = 100u64;
    let app_bytes = p * (p - 1) * m;
    for (name, strategy, multiplier) in [
        ("AR", StrategyKind::ar(), 1.0),
        ("DR", StrategyKind::dr(), 1.0),
        ("MPI", StrategyKind::mpi(), 1.0),
        ("throttled", StrategyKind::throttled(1.0), 1.0),
        // TPS delivers forwarded bytes twice (once at the intermediate,
        // once at the destination); only a fraction are forwarded.
        ("TPS", StrategyKind::tps(), 1.0),
    ] {
        let r = report(shape, &strategy, m);
        assert!(
            r.stats.payload_bytes_delivered as f64 >= app_bytes as f64 * multiplier,
            "{name}: delivered {} < {app_bytes}",
            r.stats.payload_bytes_delivered
        );
        assert_eq!(
            r.stats.packets_injected, r.stats.packets_delivered,
            "{name}"
        );
    }
}

/// VMesh conserves bytes across its two phases: each phase re-sends every
/// application byte once.
#[test]
fn vmesh_moves_each_byte_twice() {
    let r = report("4x4", &StrategyKind::vmesh(), 64);
    // Phase 1: P·(pvx-1)/pvx ... easier from program structure: every node
    // sends (pvx-1) row messages of pvy·m plus (pvy-1) column messages of
    // pvx·m. For 4x4 → vmesh 4x4: 16 nodes × (3·4·64 + 3·4·64).
    let expected = 16 * (3 * 4 * 64 + 3 * 4 * 64);
    assert_eq!(r.stats.payload_bytes_delivered, expected);
}

/// The paper's strategy-selection bottom line at miniature scale: the
/// direct scheme wins on the symmetric torus, TPS is competitive on the
/// asymmetric one, and combining wins short messages.
#[test]
fn strategy_ordering_matches_paper_shape() {
    // Symmetric: AR beats DR.
    let ar_sym = report("4x4x4", &StrategyKind::ar(), 432);
    let dr_sym = report("4x4x4", &StrategyKind::dr(), 432);
    assert!(
        ar_sym.percent_of_peak > dr_sym.percent_of_peak,
        "AR {} vs DR {}",
        ar_sym.percent_of_peak,
        dr_sym.percent_of_peak
    );
    // Short messages: combining beats direct.
    let vm_short = report("4x4x4", &StrategyKind::vmesh(), 8);
    let ar_short = report("4x4x4", &StrategyKind::ar(), 8);
    assert!(vm_short.cycles < ar_short.cycles);
    // Large messages: direct beats combining.
    let vm_large = report("4x4x4", &StrategyKind::vmesh(), 432);
    assert!(ar_sym.cycles < vm_large.cycles);
}

/// DR's dimension-order asymmetry: better when X is the longest dimension.
#[test]
fn dr_prefers_x_longest() {
    let x_long = report("8x4x4", &StrategyKind::dr(), 432);
    let z_long = report("4x4x8", &StrategyKind::dr(), 432);
    assert!(
        x_long.percent_of_peak > z_long.percent_of_peak + 5.0,
        "X-longest {} vs Z-longest {}",
        x_long.percent_of_peak,
        z_long.percent_of_peak
    );
}

/// Auto selection dispatches as Section 5 prescribes and actually runs.
#[test]
fn auto_dispatch_runs_the_right_strategy() {
    let r = report("4x4x4", &StrategyKind::Auto, 432);
    assert_eq!(r.strategy.name(), "AR");
    let r = report("8x4x4", &StrategyKind::Auto, 432);
    assert_eq!(r.strategy.name(), "TPS");
    let r = report("4x4x4", &StrategyKind::Auto, 8);
    assert_eq!(r.strategy.name(), "VMesh");
}

/// Deterministic packets ride the bubble VC; adaptive packets mostly ride
/// the dynamic VCs.
#[test]
fn vc_discipline() {
    let dr = report("4x4x2", &StrategyKind::dr(), 240);
    assert_eq!(dr.stats.dynamic_hops, 0);
    let ar = report("4x4x2", &StrategyKind::ar(), 240);
    assert!(ar.stats.dynamic_hops > 100 * ar.stats.bubble_hops.max(1) / 10);
}

/// Credit-based flow control (the paper's future-work sketch) completes
/// and costs only a small slowdown.
#[test]
fn credit_flow_control_overhead_is_small() {
    let tps = report("4x4x2", &StrategyKind::tps(), 432);
    let credit = report(
        "4x4x2",
        &StrategyKind::tps().with_pacer(Pacer::credit(40, 10)),
        432,
    );
    let slowdown = credit.cycles as f64 / tps.cycles as f64;
    assert!(slowdown < 1.25, "credit slowdown {slowdown}");
}

/// The same (partition, workload, strategy) is cycle-for-cycle
/// reproducible across the whole stack.
#[test]
fn end_to_end_determinism() {
    let a = report("4x4x2", &StrategyKind::tps(), 240);
    let b = report("4x4x2", &StrategyKind::tps(), 240);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
}

/// Percent of peak is always in (0, ~100]: the Equation-2 bound holds.
#[test]
fn peak_bound_is_respected() {
    for shape in ["4x1x1", "4x4", "4x4x4", "8x4x4", "4x2M"] {
        for m in [8u64, 240] {
            let r = report(shape, &StrategyKind::ar(), m);
            assert!(
                r.percent_of_peak > 0.0 && r.percent_of_peak <= 102.0,
                "{shape} m={m}: {}",
                r.percent_of_peak
            );
        }
    }
}

/// Deterministic and adaptive traffic can coexist (mixed workloads don't
/// wedge the router).
#[test]
fn mixed_routing_modes_coexist() {
    use bgl_alltoall::sim::{Engine, NodeProgram, ScriptedProgram, SendSpec};
    let part: Partition = "4x4".parse().unwrap();
    let cfg = SimConfig::new(part);
    let programs: Vec<Box<dyn NodeProgram>> = (0..16u32)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..16u32)
                .filter(|&d| d != r)
                .map(|d| {
                    if (d + r) % 2 == 0 {
                        SendSpec::adaptive(d, 4, 128)
                    } else {
                        SendSpec::deterministic(d, 4, 128)
                    }
                })
                .collect();
            Box::new(ScriptedProgram::new(sends, 15)) as Box<dyn NodeProgram>
        })
        .collect();
    let stats = Engine::new(cfg, programs)
        .run()
        .expect("mixed traffic completes");
    assert_eq!(stats.packets_delivered, 16 * 15);
    assert!(stats.bubble_hops > 0);
    assert!(stats.dynamic_hops > 0);
}

/// RoutingMode is exposed through the facade for downstream users.
#[test]
fn facade_exposes_routing_mode() {
    assert_ne!(RoutingMode::Adaptive, RoutingMode::Deterministic);
}

/// The `AaRun` builder is exactly equivalent to calling `run_aa` with
/// the same pieces — including config tweaks applied through `.sim`.
#[test]
fn builder_matches_run_aa() {
    let part: Partition = "4x4x2".parse().unwrap();
    let strategy = StrategyKind::ar();
    let direct = {
        let mut cfg = SimConfig::new(part);
        cfg.router.vc_fifo_chunks = 16;
        run_aa(
            part,
            &AaWorkload::full(240),
            &strategy,
            &MachineParams::bgl(),
            cfg,
        )
        .unwrap()
    };
    let built = AaRun::builder(part, AaWorkload::full(240))
        .strategy(strategy)
        .sim(|cfg| cfg.router.vc_fifo_chunks = 16)
        .run()
        .unwrap();
    assert_eq!(direct.cycles, built.cycles);
    assert_eq!(direct.stats, built.stats);
}

/// Builder defaults: Auto strategy selection and BG/L parameters.
#[test]
fn builder_defaults_dispatch_auto() {
    let part: Partition = "4x4x4".parse().unwrap();
    let r = AaRun::builder(part, AaWorkload::full(432)).run().unwrap();
    assert_eq!(r.strategy.name(), "AR");
}
